"""Unit tests for the DRAM and on-chip network models."""


import pytest

from repro.capstan import DDR4, HBM2E, IDEAL, custom_bandwidth
from repro.capstan.arch import DEFAULT_CONFIG, CapstanConfig
from repro.capstan.calibration import DEFAULT_COST
from repro.capstan.dram import FIG12_BANDWIDTHS
from repro.capstan.network import NetworkModel


class TestDramModels:
    def test_paper_configurations(self):
        assert DDR4.bandwidth_gb_s == pytest.approx(68.3)  # 4 x DDR4-2133
        assert HBM2E.bandwidth_gb_s == 1800.0  # Section 8.1
        assert IDEAL.is_ideal

    def test_ideal_transfers_free(self):
        assert IDEAL.transfer_seconds(1 << 30, bursts=1000) == 0.0

    def test_bandwidth_term_scales(self):
        t1 = HBM2E.transfer_seconds(1e6, bursts=1)
        t2 = HBM2E.transfer_seconds(2e6, bursts=1)
        assert t2 > t1
        assert t2 / t1 == pytest.approx(2.0, rel=0.05)

    def test_latency_term_scales_with_bursts(self):
        t1 = DDR4.transfer_seconds(64, bursts=1)
        t100 = DDR4.transfer_seconds(64 * 100, bursts=100)
        assert t100 > t1

    def test_small_transfers_pay_granule(self):
        # 4 bytes across 10 bursts cannot beat 10 x 64-byte granules.
        t = DDR4.transfer_seconds(40, bursts=10)
        floor = 10 * 64 / (DDR4.bytes_per_second * DDR4.stream_efficiency)
        assert t >= floor

    def test_ddr4_slower_than_hbm(self):
        for size in (1e4, 1e6, 1e9):
            assert DDR4.transfer_seconds(size) > HBM2E.transfer_seconds(size)

    def test_custom_bandwidth_sweep_points(self):
        assert FIG12_BANDWIDTHS == (20, 50, 100, 200, 500, 1000, 2000)
        models = [custom_bandwidth(bw) for bw in FIG12_BANDWIDTHS]
        times = [m.transfer_seconds(1e8) for m in models]
        assert times == sorted(times, reverse=True)

    def test_custom_bandwidth_name(self):
        assert custom_bandwidth(500).name == "500GB/s"
        assert custom_bandwidth(500, "half-tb").name == "half-tb"


class TestArchConfig:
    def test_paper_resource_counts(self):
        c = DEFAULT_CONFIG
        assert (c.n_pcu, c.n_pmu, c.n_mc, c.n_shuffle) == (200, 200, 80, 16)
        assert c.lanes == 16 and c.pcu_stages == 6

    def test_pmu_capacity(self):
        # 16 banks x 4096 32-bit words (Section 8.2).
        assert DEFAULT_CONFIG.pmu_bytes == 16 * 4096 * 4

    def test_cycle_conversion(self):
        c = CapstanConfig(clock_hz=2e9)
        assert c.cycles_to_seconds(2e9) == 1.0
        assert c.bytes_per_cycle(2e9) == 1.0

    def test_peak_flops(self):
        c = DEFAULT_CONFIG
        assert c.peak_flops == c.n_pcu * c.lanes * c.clock_hz


class TestNetworkModel:
    @pytest.fixture
    def net(self):
        return NetworkModel(DEFAULT_CONFIG, DEFAULT_COST)

    def test_shuffle_caps_outer_par(self, net):
        assert net.effective_outer_par(64, uses_shuffle=True) == 16
        assert net.effective_outer_par(64, uses_shuffle=False) == 64
        assert net.effective_outer_par(8, uses_shuffle=True) == 8

    def test_gather_throughput(self, net):
        # 16 networks x 16 lanes per cycle.
        cycles = net.gather_cycles(16 * 16 * 100, shuffle_count=16)
        assert cycles == pytest.approx(100.0)

    def test_gather_zero(self, net):
        assert net.gather_cycles(0, 16) == 0.0

    def test_fewer_networks_slower(self, net):
        many = net.gather_cycles(10000, shuffle_count=16)
        few = net.gather_cycles(10000, shuffle_count=2)
        assert few > many

    def test_ideal_segment_ii_reduced(self, net):
        assert net.segment_ii_cycles(ideal=True) < net.segment_ii_cycles(ideal=False)


class TestPaperResultsConsistency:
    """The transcription module is internally consistent."""

    def test_tables_cover_all_kernels(self):
        from repro.eval import paper_results as pr
        from repro.kernels import KERNEL_ORDER

        assert set(pr.TABLE3_LOC) == set(KERNEL_ORDER)
        assert set(pr.TABLE5_RESOURCES) == set(KERNEL_ORDER)
        for platform in ("Capstan (DDR4)", "V100 GPU", "128-Thread CPU"):
            assert set(pr.TABLE6_NORMALISED[platform]) == set(KERNEL_ORDER)

    def test_headline_geomeans_match_rows(self):
        from statistics import geometric_mean

        from repro.eval import paper_results as pr

        cpu = geometric_mean(pr.TABLE6_NORMALISED["128-Thread CPU"].values())
        gpu = geometric_mean(pr.TABLE6_NORMALISED["V100 GPU"].values())
        assert cpu == pytest.approx(pr.HEADLINE_CPU_SPEEDUP, rel=0.01)
        assert gpu == pytest.approx(pr.HEADLINE_GPU_SPEEDUP, rel=0.01)

    def test_kernel_spec_loc_matches_transcription(self):
        from repro.eval import paper_results as pr
        from repro.kernels import KERNELS

        for name, (input_loc, spatial_loc) in pr.TABLE3_LOC.items():
            assert KERNELS[name].paper_input_loc == input_loc
            assert KERNELS[name].paper_spatial_loc == spatial_loc
