"""Unit tests for the cycle-approximate Capstan simulator."""

import pytest

from repro.capstan import (
    DDR4,
    HBM2E,
    IDEAL,
    CapstanSimulator,
    compute_stats,
    custom_bandwidth,
)
from repro.core import compile_stmt
from repro.kernels import KERNEL_ORDER
from tests.helpers_kernels import build_small_kernel_stmt


@pytest.fixture(scope="module")
def compiled():
    out = {}
    for name in KERNEL_ORDER:
        stmt, _, _ = build_small_kernel_stmt(name)
        out[name] = compile_stmt(stmt, name)
    return out


@pytest.fixture(scope="module")
def sim():
    return CapstanSimulator()


class TestMemoryOrdering:
    @pytest.mark.parametrize("name", KERNEL_ORDER)
    def test_ideal_fastest_ddr4_slowest(self, compiled, sim, name):
        kernel = compiled[name]
        stats = compute_stats(kernel)
        t_ideal = sim.simulate(kernel, dram=IDEAL, stats=stats).seconds
        t_hbm = sim.simulate(kernel, dram=HBM2E, stats=stats).seconds
        t_ddr = sim.simulate(kernel, dram=DDR4, stats=stats).seconds
        assert t_ideal <= t_hbm <= t_ddr

    def test_bandwidth_monotone(self, compiled, sim):
        kernel = compiled["SpMV"]
        stats = compute_stats(kernel)
        times = [
            sim.simulate(kernel, dram=custom_bandwidth(bw), stats=stats).seconds
            for bw in (20, 100, 500, 2000)
        ]
        assert times == sorted(times, reverse=True)

    def test_sweep_helper(self, compiled, sim):
        kernel = compiled["SpMV"]
        sweep = sim.sweep_bandwidth(kernel, None, (20, 200, 2000))
        assert set(sweep) == {20, 200, 2000}
        assert sweep[20].seconds >= sweep[2000].seconds


class TestResults:
    def test_breakdown_sums_to_bottleneck(self, compiled, sim):
        res = sim.simulate(compiled["SpMV"], dram=HBM2E)
        assert res.bottleneck in res.breakdown
        assert res.seconds >= max(res.breakdown.values())

    def test_cycles_consistent_with_seconds(self, compiled, sim):
        res = sim.simulate(compiled["SpMV"], dram=HBM2E)
        assert res.cycles == pytest.approx(res.seconds * 1.6e9)

    def test_speedup_over(self, compiled, sim):
        kernel = compiled["SpMV"]
        stats = compute_stats(kernel)
        hbm = sim.simulate(kernel, dram=HBM2E, stats=stats)
        ddr = sim.simulate(kernel, dram=DDR4, stats=stats)
        assert hbm.speedup_over(ddr) >= 1.0

    def test_ideal_has_no_dram_term(self, compiled, sim):
        res = sim.simulate(compiled["SpMV"], dram=IDEAL)
        assert res.breakdown["dram"] == 0.0

    @pytest.mark.parametrize("name", KERNEL_ORDER)
    def test_positive_times(self, compiled, sim, name):
        res = sim.simulate(compiled[name], dram=HBM2E)
        assert res.seconds > 0
        assert all(v >= 0 for v in res.breakdown.values())

    def test_scan_term_present_for_union_kernels(self, compiled, sim):
        res = sim.simulate(compiled["Plus2"], dram=HBM2E)
        assert res.breakdown["scan"] > 0

    def test_gather_term_present_for_spmv(self, compiled, sim):
        res = sim.simulate(compiled["SpMV"], dram=HBM2E)
        assert res.breakdown["gather"] > 0

    def test_no_gather_for_sddmm(self, compiled, sim):
        res = sim.simulate(compiled["SDDMM"], dram=HBM2E)
        assert res.breakdown["gather"] == 0.0


class TestParallelismEffects:
    def test_outer_par_speeds_up_compute(self, sim):
        def time_at(par):
            stmt, _, _ = build_small_kernel_stmt("SDDMM", outer_par=par)
            kernel = compile_stmt(stmt, "sddmm")
            return sim.simulate(kernel, dram=IDEAL).seconds

        assert time_at(8) < time_at(1)

    def test_shuffle_caps_outer_par(self, sim):
        """Outer parallelization beyond 16 is capped for shuffle users."""
        stmt, _, _ = build_small_kernel_stmt("SpMV", outer_par=64)
        kernel = compile_stmt(stmt, "spmv")
        res = sim.simulate(kernel, dram=IDEAL)
        stmt16, _, _ = build_small_kernel_stmt("SpMV", outer_par=16)
        res16 = sim.simulate(compile_stmt(stmt16, "spmv"), dram=IDEAL)
        assert res.seconds == pytest.approx(res16.seconds, rel=0.3)
