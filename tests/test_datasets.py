"""Unit tests for the Table 4 dataset substrate and generators."""

import numpy as np
import pytest

from repro.data import DATASETS, DATASETS_BY_NAME, datasets_for, load
from repro.data import generators as gen
from repro.kernels import KERNEL_ORDER


@pytest.fixture
def nprng():
    return np.random.default_rng(3)


class TestGenerators:
    def test_uniform_matrix_density(self, nprng):
        coords, vals = gen.uniform_matrix(100, 100, 0.1, nprng)
        assert abs(len(coords) / 10000 - 0.1) < 0.03
        assert coords[:, 0].max() < 100 and coords[:, 1].max() < 100

    def test_uniform_matrix_sparse_path(self, nprng):
        coords, vals = gen.uniform_matrix(1000, 1000, 0.001, nprng)
        assert 500 <= len(coords) <= 1500

    def test_banded_symmetric_band_structure(self, nprng):
        coords, _ = gen.banded_symmetric(200, 0.05, nprng)
        offsets = np.abs(coords[:, 0] - coords[:, 1])
        assert offsets.max() <= 200 * 0.05  # banded
        # Symmetric structure: (i, j) present implies (j, i) present.
        keys = set(map(tuple, coords))
        assert all((j, i) in keys for i, j in list(keys)[:50])

    def test_circuit_has_full_diagonal(self, nprng):
        coords, _ = gen.circuit(100, 0.01, nprng)
        diag = coords[coords[:, 0] == coords[:, 1]]
        assert len(diag) == 100

    def test_trefethen_structure(self, nprng):
        coords, _ = gen.trefethen(64, nprng)
        offsets = np.unique(np.abs(coords[:, 0] - coords[:, 1]))
        assert 0 in offsets and 1 in offsets and 2 in offsets
        assert 4 in offsets and 32 in offsets  # powers of two

    def test_uniform_tensor3(self, nprng):
        coords, vals = gen.uniform_tensor3((20, 20, 20), 0.1, nprng)
        assert coords.shape[1] == 3
        assert abs(len(coords) / 8000 - 0.1) < 0.05

    def test_hub_tensor3_skew(self, nprng):
        coords, _ = gen.hub_tensor3((50, 500, 500), 2000, nprng)
        counts = np.bincount(coords[:, 0], minlength=50)
        # Power-law skew: the top mode-0 slice holds far more than average.
        assert counts.max() > 3 * counts.mean()

    def test_rotate_columns(self):
        coords = np.array([[0, 0], [0, 7], [1, 3]])
        vals = np.array([1.0, 2.0, 3.0])
        out, out_vals = gen.rotate_columns(coords, vals, 8, 1)
        keys = set(map(tuple, out))
        assert keys == {(0, 1), (0, 0), (1, 4)}

    def test_rotate_even_coords(self):
        coords = np.array([[0, 0, 2], [0, 0, 3]])
        vals = np.array([1.0, 2.0])
        out, out_vals = gen.rotate_even_coords(coords, vals, 8)
        keys = set(map(tuple, out))
        assert keys == {(0, 0, 3)}  # collision keeps one entry
        assert len(out_vals) == 1


class TestDatasetSpecs:
    def test_table4_inventory(self):
        names = {d.name for d in DATASETS}
        assert {"bcsstk30", "ckt11752_dc_1", "Trefethen_20000",
                "facebook"} <= names
        assert len(DATASETS) == 10

    def test_paper_dimensions(self):
        assert DATASETS_BY_NAME["bcsstk30"].dims == (28924, 28924)
        assert DATASETS_BY_NAME["facebook"].dims == (1591, 63891, 63890)
        assert DATASETS_BY_NAME["random-50pct"].density == 0.5

    def test_every_kernel_has_datasets(self):
        for name in KERNEL_ORDER:
            assert datasets_for(name), name

    def test_matrix_kernels_use_suitesparse(self):
        names = [d.name for d in datasets_for("SpMV")]
        assert names == ["bcsstk30", "ckt11752_dc_1", "Trefethen_20000"]

    def test_plus3_uses_random_matrices(self):
        names = [d.name for d in datasets_for("Plus3")]
        assert names == ["random-1pct", "random-10pct", "random-50pct"]

    def test_scaled_dims(self):
        spec = DATASETS_BY_NAME["bcsstk30"]
        assert spec.scaled_dims(1.0) == (28924, 28924)
        small = spec.scaled_dims(0.01)
        assert small[0] < 300

    def test_nnz_estimate(self):
        spec = DATASETS_BY_NAME["bcsstk30"]
        assert spec.nnz_estimate(1.0) == pytest.approx(2.07e6, rel=0.1)


class TestLoad:
    def test_load_spmv(self):
        tensors = load("SpMV", "bcsstk30", scale=0.01)
        assert set(tensors) == {"A", "x", "y"}
        assert tensors["A"].nnz > 0
        assert tensors["x"].shape == (tensors["A"].shape[1],)

    def test_load_rejects_mismatched_pair(self):
        with pytest.raises(ValueError):
            load("SpMV", "facebook")

    def test_plus3_operands_differ(self):
        tensors = load("Plus3", "random-10pct", scale=0.1)
        b = tensors["B"].to_dense()
        c = tensors["C"].to_dense()
        d = tensors["D"].to_dense()
        assert not np.array_equal(b, c)
        assert not np.array_equal(c, d)
        # Rotations preserve nnz.
        assert (b != 0).sum() == (c != 0).sum() == (d != 0).sum()

    def test_innerprod_operands_overlap(self):
        tensors = load("InnerProd", "random3-10pct", scale=0.2)
        b = tensors["B"].to_dense() != 0
        c = tensors["C"].to_dense() != 0
        assert (b & c).sum() > 0  # rotated-even variant still intersects

    def test_deterministic_by_seed(self):
        a = load("SpMV", "Trefethen_20000", scale=0.02, seed=5)
        b = load("SpMV", "Trefethen_20000", scale=0.02, seed=5)
        assert np.array_equal(a["A"].to_dense(), b["A"].to_dense())

    def test_sddmm_factor_shapes(self):
        tensors = load("SDDMM", "bcsstk30", scale=0.01)
        n, k = tensors["C"].shape
        assert tensors["D"].shape == (k, tensors["B"].shape[1])

    def test_mattransmul_scalars(self):
        tensors = load("MatTransMul", "bcsstk30", scale=0.01)
        assert tensors["alpha"].scalar_value() == 2.0
        assert tensors["beta"].scalar_value() == 3.0
