"""Shared kernel-construction helpers for tests.

Builds each Table 3 kernel on small random data, returning the scheduled
statement, the output tensor, and the full operand dictionary.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import KERNELS
from repro.tensor import Tensor

#: Small operand shapes per kernel (distinct dims catch mode mix-ups).
SMALL_DIMS = {
    "SpMV": {"A": (7, 9), "x": (9,), "y": (7,)},
    "Plus3": {"A": (6, 8), "B": (6, 8), "C": (6, 8), "D": (6, 8)},
    "SDDMM": {"A": (6, 8), "B": (6, 8), "C": (6, 5), "D": (5, 8)},
    "MatTransMul": {"A": (9, 7), "x": (9,), "z": (7,), "y": (7,),
                    "alpha": (), "beta": ()},
    "Residual": {"A": (7, 9), "x": (9,), "b": (7,), "y": (7,)},
    "TTV": {"A": (4, 5), "B": (4, 5, 6), "c": (6,)},
    "TTM": {"A": (4, 5, 3), "B": (4, 5, 6), "C": (3, 6)},
    "MTTKRP": {"A": (4, 3), "B": (4, 5, 6), "C": (3, 5), "D": (3, 6)},
    "InnerProd": {"alpha_out": (), "B": (4, 5, 6), "C": (4, 5, 6)},
    "Plus2": {"A": (4, 5, 6), "B": (4, 5, 6), "C": (4, 5, 6)},
    # Format-sweep kernels (COO / DCSR / blocked layouts).
    "COO-SpMV": {"A": (7, 9), "x": (9,), "y": (7,)},
    "DCSR-SpMM": {"A": (7, 9), "B": (9, 5), "C": (7, 5)},
    "BCSR-SpMV": {"A": (3, 5, 4, 4), "x": (5, 4), "y": (3, 4)},
}


def make_small_tensors(name: str, seed: int = 42, density: float = 0.4,
                       dims: dict | None = None) -> dict[str, Tensor]:
    """Small random operand tensors for one kernel."""
    rng = np.random.default_rng(seed)
    spec = KERNELS[name]
    shapes = dims or SMALL_DIMS[name]
    tensors: dict[str, Tensor] = {}
    for ts in spec.tensor_specs:
        shape = shapes[ts.name]
        t = ts.make(shape)
        if ts.role == "scalar":
            t.insert((), 2.0 if "alpha" in ts.name else 3.0)
        elif ts.role == "sparse":
            dense = (rng.random(shape) < density) * (rng.random(shape) + 0.5)
            t.from_dense(dense)
        elif ts.role == "dense":
            t.from_dense(rng.random(shape))
        tensors[ts.name] = t
    return tensors


def build_small_kernel_stmt(name: str, seed: int = 42, density: float = 0.4,
                            inner_par: int = 16, outer_par: int | None = None):
    """(scheduled IndexStmt, output Tensor, operand dict) on small data."""
    tensors = make_small_tensors(name, seed, density)
    spec = KERNELS[name]
    stmt, out = spec.build(tensors, inner_par=inner_par, outer_par=outer_par)
    return stmt, out, tensors
