"""Unit tests for the format language (levels, formats, memory regions)."""

import pytest

from repro.formats import (
    CSC,
    CSF,
    CSR,
    DENSE_MATRIX,
    DENSE_MATRIX_CM,
    DENSE_VECTOR,
    SPARSE_VECTOR,
    UCC,
    Format,
    LevelKind,
    MemoryRegion,
    MemoryType,
    ModeFormat,
    bit_vector,
    compressed,
    dense,
    format_of,
    offChip,
    onChip,
)


class TestModeFormat:
    def test_dense_properties(self):
        assert dense.is_dense
        assert not dense.is_compressed
        assert dense.iterator_symbol == "U"
        assert dense.arrays() == ()

    def test_compressed_properties(self):
        assert compressed.is_compressed
        assert compressed.iterator_symbol == "C"
        assert compressed.arrays() == ("pos", "crd")

    def test_bit_vector_properties(self):
        assert bit_vector.is_bit_vector
        assert bit_vector.iterator_symbol == "B"
        assert bit_vector.arrays() == ("bv",)

    def test_str_includes_flags(self):
        mf = ModeFormat(LevelKind.COMPRESSED, ordered=False, unique=False)
        text = str(mf)
        assert "unordered" in text and "non-unique" in text

    def test_default_ordered_unique(self):
        assert compressed.ordered and compressed.unique


class TestFormat:
    def test_csr_structure(self):
        fmt = CSR(offChip)
        assert fmt.order == 2
        assert fmt.level_format(0).is_dense
        assert fmt.level_format(1).is_compressed
        assert fmt.mode_ordering == (0, 1)
        assert not fmt.is_on_chip

    def test_csc_mode_ordering(self):
        fmt = CSC(offChip)
        assert fmt.mode_ordering == (1, 0)
        assert fmt.mode_of_level(0) == 1
        assert fmt.level_of_mode(0) == 1

    def test_csf_three_compressed(self):
        fmt = CSF(offChip)
        assert fmt.order == 3
        assert all(fmt.level_format(i).is_compressed for i in range(3))

    def test_ucc_mixed(self):
        fmt = UCC(offChip)
        assert fmt.level_format(0).is_dense
        assert fmt.level_format(1).is_compressed
        assert fmt.level_format(2).is_compressed

    def test_memory_region_positional(self):
        # Paper-style two-argument form: Format({...}, offChip).
        fmt = Format([dense, compressed], offChip)
        assert fmt.memory is MemoryRegion.OFF_CHIP
        assert fmt.mode_ordering == (0, 1)

    def test_memory_region_with_ordering(self):
        fmt = Format([dense, dense], [1, 0], onChip)
        assert fmt.memory is MemoryRegion.ON_CHIP
        assert fmt.mode_ordering == (1, 0)

    def test_memory_twice_rejected(self):
        with pytest.raises(TypeError):
            Format([dense], offChip, offChip)

    def test_bad_ordering_rejected(self):
        with pytest.raises(ValueError):
            Format([dense, compressed], [0, 0])
        with pytest.raises(ValueError):
            Format([dense, compressed], [1, 2])

    def test_with_memory(self):
        on = CSR(offChip).with_memory(MemoryRegion.ON_CHIP)
        assert on.is_on_chip
        assert on.mode_formats == CSR(offChip).mode_formats

    def test_is_all_dense(self):
        assert DENSE_MATRIX(offChip).is_all_dense
        assert not CSR(offChip).is_all_dense

    def test_has_compressed_level(self):
        assert CSR(offChip).has_compressed_level
        assert not DENSE_VECTOR(offChip).has_compressed_level

    def test_str_mentions_memory(self):
        assert "onChip" in str(SPARSE_VECTOR(onChip))
        assert "offChip" in str(CSR(offChip))

    def test_column_major_dense(self):
        fmt = DENSE_MATRIX_CM(offChip)
        assert fmt.mode_ordering == (1, 0)
        assert fmt.is_all_dense

    def test_format_of_lookup(self):
        assert format_of("csr").mode_formats == CSR(offChip).mode_formats
        assert format_of("csc").mode_ordering == (1, 0)
        assert format_of("csf").order == 3

    def test_format_of_unknown(self):
        with pytest.raises(KeyError):
            format_of("cooocoo")


class TestMemoryTypes:
    def test_region_flags(self):
        assert MemoryRegion.ON_CHIP.is_on_chip
        assert not MemoryRegion.OFF_CHIP.is_on_chip

    def test_type_onoff_chip(self):
        assert MemoryType.DRAM_DENSE.is_off_chip
        assert MemoryType.SRAM_SPARSE.is_on_chip
        assert MemoryType.FIFO.is_on_chip

    def test_random_access_support(self):
        assert MemoryType.SRAM_DENSE.supports_random_access
        assert MemoryType.SRAM_SPARSE.supports_random_access
        assert not MemoryType.FIFO.supports_random_access
        assert not MemoryType.REGISTER.supports_random_access

    def test_streaming(self):
        assert MemoryType.FIFO.is_streaming
        assert MemoryType.BIT_VECTOR.is_streaming
        assert not MemoryType.SRAM_DENSE.is_streaming
