"""Unit tests for the format language (levels, formats, memory regions)."""

import pytest

from repro.formats import (
    BCSR,
    COO,
    COO3,
    CSC,
    CSF,
    CSR,
    DCSR,
    DENSE_MATRIX,
    DENSE_MATRIX_CM,
    DENSE_VECTOR,
    SPARSE_VECTOR,
    UCC,
    Format,
    LevelKind,
    MemoryRegion,
    MemoryType,
    ModeFormat,
    bit_vector,
    block,
    compressed,
    compressed_nonunique,
    dense,
    format_of,
    offChip,
    onChip,
    registered_formats,
    singleton,
)


class TestModeFormat:
    def test_dense_properties(self):
        assert dense.is_dense
        assert not dense.is_compressed
        assert dense.iterator_symbol == "U"
        assert dense.arrays() == ()

    def test_compressed_properties(self):
        assert compressed.is_compressed
        assert compressed.iterator_symbol == "C"
        assert compressed.arrays() == ("pos", "crd")

    def test_bit_vector_properties(self):
        assert bit_vector.is_bit_vector
        assert bit_vector.iterator_symbol == "B"
        assert bit_vector.arrays() == ("bv",)

    def test_str_includes_flags(self):
        mf = ModeFormat(LevelKind.COMPRESSED, ordered=False, unique=False)
        text = str(mf)
        assert "unordered" in text and "non-unique" in text

    def test_default_ordered_unique(self):
        assert compressed.ordered and compressed.unique

    def test_singleton_properties(self):
        assert singleton.is_singleton
        assert singleton.iterator_symbol == "S"
        assert singleton.arrays() == ("crd",)
        assert singleton.branchless and singleton.compact
        assert not singleton.full

    def test_block_properties(self):
        b = block(4)
        assert b.is_block and b.is_dense  # uncompressed capability
        assert b.size == 4
        assert b.iterator_symbol == "U"
        assert b.arrays() == ()
        assert "block[4]" in str(b)

    def test_block_requires_positive_size(self):
        with pytest.raises(ValueError):
            block(0)
        with pytest.raises(ValueError):
            ModeFormat(LevelKind.BLOCK)

    def test_size_rejected_on_non_block(self):
        with pytest.raises(ValueError):
            ModeFormat(LevelKind.COMPRESSED, size=4)

    def test_compressed_nonunique_flags(self):
        assert compressed_nonunique.is_compressed
        assert not compressed_nonunique.unique
        assert "non-unique" in str(compressed_nonunique)

    def test_capability_protocol_record(self):
        props = compressed.properties()
        assert props == {"full": False, "ordered": True, "unique": True,
                         "branchless": False, "compact": True}
        assert dense.properties()["full"] and dense.properties()["branchless"]


class TestFormat:
    def test_csr_structure(self):
        fmt = CSR(offChip)
        assert fmt.order == 2
        assert fmt.level_format(0).is_dense
        assert fmt.level_format(1).is_compressed
        assert fmt.mode_ordering == (0, 1)
        assert not fmt.is_on_chip

    def test_csc_mode_ordering(self):
        fmt = CSC(offChip)
        assert fmt.mode_ordering == (1, 0)
        assert fmt.mode_of_level(0) == 1
        assert fmt.level_of_mode(0) == 1

    def test_csf_three_compressed(self):
        fmt = CSF(offChip)
        assert fmt.order == 3
        assert all(fmt.level_format(i).is_compressed for i in range(3))

    def test_ucc_mixed(self):
        fmt = UCC(offChip)
        assert fmt.level_format(0).is_dense
        assert fmt.level_format(1).is_compressed
        assert fmt.level_format(2).is_compressed

    def test_memory_region_positional(self):
        # Paper-style two-argument form: Format({...}, offChip).
        fmt = Format([dense, compressed], offChip)
        assert fmt.memory is MemoryRegion.OFF_CHIP
        assert fmt.mode_ordering == (0, 1)

    def test_memory_region_with_ordering(self):
        fmt = Format([dense, dense], [1, 0], onChip)
        assert fmt.memory is MemoryRegion.ON_CHIP
        assert fmt.mode_ordering == (1, 0)

    def test_memory_twice_rejected(self):
        with pytest.raises(TypeError):
            Format([dense], offChip, offChip)

    def test_bad_ordering_rejected(self):
        with pytest.raises(ValueError):
            Format([dense, compressed], [0, 0])
        with pytest.raises(ValueError):
            Format([dense, compressed], [1, 2])

    def test_with_memory(self):
        on = CSR(offChip).with_memory(MemoryRegion.ON_CHIP)
        assert on.is_on_chip
        assert on.mode_formats == CSR(offChip).mode_formats

    def test_is_all_dense(self):
        assert DENSE_MATRIX(offChip).is_all_dense
        assert not CSR(offChip).is_all_dense

    def test_has_compressed_level(self):
        assert CSR(offChip).has_compressed_level
        assert not DENSE_VECTOR(offChip).has_compressed_level

    def test_str_mentions_memory(self):
        assert "onChip" in str(SPARSE_VECTOR(onChip))
        assert "offChip" in str(CSR(offChip))

    def test_column_major_dense(self):
        fmt = DENSE_MATRIX_CM(offChip)
        assert fmt.mode_ordering == (1, 0)
        assert fmt.is_all_dense

    def test_format_of_lookup(self):
        assert format_of("csr").mode_formats == CSR(offChip).mode_formats
        assert format_of("csc").mode_ordering == (1, 0)
        assert format_of("csf").order == 3

    def test_format_of_unknown(self):
        with pytest.raises(KeyError):
            format_of("cooocoo")

    def test_ordering_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="permutation"):
            Format([dense, compressed], [0])
        with pytest.raises(ValueError, match="permutation"):
            Format([dense, compressed], [0, 1, 2])

    def test_ordering_non_integer_rejected(self):
        with pytest.raises(ValueError, match="integers"):
            Format([dense, compressed], ["a", "b"])

    def test_ordering_negative_rejected(self):
        with pytest.raises(ValueError, match="permutation"):
            Format([dense, compressed], [-1, 0])

    def test_non_modeformat_levels_rejected(self):
        with pytest.raises(TypeError):
            Format(["dense", compressed])

    def test_singleton_root_rejected(self):
        with pytest.raises(ValueError, match="outermost"):
            Format([singleton, compressed])

    def test_block_must_be_trailing(self):
        with pytest.raises(ValueError, match="trailing"):
            Format([dense, block(4), compressed, block(4)])


class TestNewWholeTensorFormats:
    def test_coo_structure(self):
        fmt = COO(offChip)
        assert fmt.level_format(0).is_compressed
        assert not fmt.level_format(0).unique
        assert fmt.level_format(1).is_singleton
        assert fmt.has_singleton_level

    def test_coo3_structure(self):
        fmt = COO3(offChip)
        assert fmt.order == 3
        assert fmt.level_format(1).is_singleton
        assert fmt.level_format(2).is_singleton

    def test_dcsr_structure(self):
        fmt = DCSR(offChip)
        assert all(fmt.level_format(i).is_compressed for i in range(2))

    def test_bcsr_structure(self):
        fmt = BCSR(offChip)
        assert fmt.order == 4
        assert fmt.level_format(0).is_dense
        assert fmt.level_format(1).is_compressed
        assert fmt.level_format(2).is_block and fmt.level_format(3).is_block
        assert fmt.has_block_level

    def test_bcsr_custom_tile(self):
        fmt = BCSR(offChip, size=8)
        assert fmt.level_format(2).size == 8

    def test_registry_contains_new_formats(self):
        names = set(registered_formats())
        assert {"coo", "coo3", "dcsr", "ccd", "bcsr"} <= names
        for name, spec in registered_formats().items():
            fmt = spec.instantiate(offChip)
            assert fmt.order >= 1
            assert spec.description

    def test_format_of_new_names(self):
        assert format_of("coo").has_singleton_level
        assert format_of("dcsr").level_format(0).is_compressed
        assert format_of("bcsr").has_block_level


class TestMemoryTypes:
    def test_region_flags(self):
        assert MemoryRegion.ON_CHIP.is_on_chip
        assert not MemoryRegion.OFF_CHIP.is_on_chip

    def test_type_onoff_chip(self):
        assert MemoryType.DRAM_DENSE.is_off_chip
        assert MemoryType.SRAM_SPARSE.is_on_chip
        assert MemoryType.FIFO.is_on_chip

    def test_random_access_support(self):
        assert MemoryType.SRAM_DENSE.supports_random_access
        assert MemoryType.SRAM_SPARSE.supports_random_access
        assert not MemoryType.FIFO.supports_random_access
        assert not MemoryType.REGISTER.supports_random_access

    def test_streaming(self):
        assert MemoryType.FIFO.is_streaming
        assert MemoryType.BIT_VECTOR.is_streaming
        assert not MemoryType.SRAM_DENSE.is_streaming
