"""Unit tests for the scheduling language (Tables 1 and 2)."""

import pytest

from repro.formats import CSR, DENSE_MATRIX, DENSE_MATRIX_CM, DENSE_VECTOR, offChip, onChip
from repro.ir import (
    CinAssign,
    Forall,
    MapCall,
    Where,
    forall_chain,
    format_stmt,
    index_vars,
    strip_suchthat,
)
from repro.ir.cin import FuseRel, SplitDown, SplitUp
from repro.schedule import INNER_PAR, OUTER_PAR, ScheduleError
from repro.tensor import Tensor, scalar


@pytest.fixture
def sddmm():
    """The paper's running example (Figure 5)."""
    N, K = 6, 4
    A = Tensor("A", (N, N), CSR(offChip))
    B = Tensor("B", (N, N), CSR(offChip))
    C = Tensor("C", (N, K), DENSE_MATRIX(offChip))
    D = Tensor("D", (K, N), DENSE_MATRIX_CM(offChip))
    i, j, k = index_vars("i j k")
    A[i, j] = B[i, j] * C[i, k] * D[k, j]
    return A, B, C, D, (i, j, k)


@pytest.fixture
def spmv_stmt():
    A = Tensor("A", (4, 5), CSR(offChip))
    x = Tensor("x", (5,), DENSE_VECTOR(offChip))
    y = Tensor("y", (4,), DENSE_VECTOR(offChip))
    i, j = index_vars("i j")
    y[i] = A[i, j] * x[j]
    return y.get_index_stmt(), (i, j), (A, x, y)


class TestEnvironment:
    def test_sets_variables(self, spmv_stmt):
        stmt, _, _ = spmv_stmt
        out = stmt.environment(INNER_PAR, 16).environment(OUTER_PAR, 2)
        assert out.environment_vars == {"innerPar": 16, "outerPar": 2}
        assert out.inner_par == 16 and out.outer_par == 2

    def test_immutable(self, spmv_stmt):
        stmt, _, _ = spmv_stmt
        stmt.environment(INNER_PAR, 16)
        assert stmt.environment_vars == {}

    def test_par_name_resolution(self, spmv_stmt):
        stmt, (i, j), _ = spmv_stmt
        ws = scalar("ws", onChip)
        stmt = stmt.environment(INNER_PAR, 8)
        stmt = stmt.precompute(stmt.assignment.rhs, [], [], ws)
        out = stmt.accelerate(j, par=INNER_PAR)
        mapped = [s for s in out.cin.walk() if isinstance(s, MapCall)]
        assert mapped[0].par == 8

    def test_unset_par_name_rejected(self, spmv_stmt):
        stmt, (i, j), _ = spmv_stmt
        with pytest.raises(ScheduleError, match="innerPar"):
            stmt.map(j, "Spatial", "Reduction", par=INNER_PAR)


class TestReorder:
    def test_swap(self, spmv_stmt):
        stmt, (i, j), _ = spmv_stmt
        out = stmt.reorder(j, i)
        loops, _ = forall_chain(out.cin)
        assert [f.ivar for f in loops] == [j, i]

    def test_four_deep(self, sddmm):
        A, B, C, D, (i, j, k) = sddmm
        stmt = A.get_index_stmt().reorder(k, i)
        loops, _ = forall_chain(stmt.cin)
        assert [f.ivar.name for f in loops] == ["k", "j", "i"]

    def test_unknown_var_rejected(self, spmv_stmt):
        stmt, (i, j), _ = spmv_stmt
        z = index_vars("z")[0]
        with pytest.raises(ScheduleError, match="not in forall chain"):
            stmt.reorder(z, i)


class TestSplitFuse:
    def test_split_up_structure(self, spmv_stmt):
        stmt, (i, j), _ = spmv_stmt
        io, ii = index_vars("io ii")
        out = stmt.split_up(i, io, ii, 4)
        body, rels = strip_suchthat(out.cin)
        loops, _ = forall_chain(body)
        assert [f.ivar for f in loops] == [io, ii, j]
        assert isinstance(rels[0], SplitUp)
        assert rels[0].factor == 4

    def test_split_down_relation(self, spmv_stmt):
        stmt, (i, j), _ = spmv_stmt
        io, ii = index_vars("io ii")
        out = stmt.split_down(i, io, ii, 4)
        _, rels = strip_suchthat(out.cin)
        assert isinstance(rels[0], SplitDown)

    def test_split_bad_factor(self, spmv_stmt):
        stmt, (i, j), _ = spmv_stmt
        io, ii = index_vars("io ii")
        with pytest.raises(ScheduleError):
            stmt.split_up(i, io, ii, 0)

    def test_fuse_structure(self, spmv_stmt):
        stmt, (i, j), _ = spmv_stmt
        f = index_vars("f")[0]
        out = stmt.fuse(i, j, f)
        body, rels = strip_suchthat(out.cin)
        loops, _ = forall_chain(body)
        assert [x.ivar for x in loops] == [f]
        assert isinstance(rels[0], FuseRel)

    def test_fuse_requires_direct_nesting(self, sddmm):
        A, *_rest, (i, j, k) = sddmm
        stmt = A.get_index_stmt()
        f = index_vars("f")[0]
        with pytest.raises(ScheduleError, match="not directly nested"):
            stmt.fuse(i, k, f)

    def test_split_then_fuse_round_trip(self, spmv_stmt):
        stmt, (i, j), _ = spmv_stmt
        io, ii, f = index_vars("io ii f")
        out = stmt.split_up(i, io, ii, 4).fuse(io, ii, f)
        body, rels = strip_suchthat(out.cin)
        loops, _ = forall_chain(body)
        assert [x.ivar for x in loops] == [f, j]
        assert len(rels) == 2


class TestPrecompute:
    def test_scalar_workspace_reduction(self, spmv_stmt):
        """Figure 5 pattern: forall(... = ws where forall ws += ...)."""
        stmt, (i, j), (A, x, y) = spmv_stmt
        ws = scalar("ws", onChip)
        out = stmt.precompute(A[i, j] * x[j], [], [], ws)
        # forall(i) (y = ws where forall(j) ws += A*x)
        assert isinstance(out.cin, Forall) and out.cin.ivar is i
        where = out.cin.body
        assert isinstance(where, Where)
        assert isinstance(where.consumer, CinAssign)
        assert where.consumer.lhs.tensor is y
        assert not where.consumer.accumulate
        prod_loops, prod_inner = forall_chain(where.producer)
        assert [f.ivar for f in prod_loops] == [j]
        assert prod_inner.accumulate
        assert prod_inner.lhs.tensor is ws

    def test_figure6a_partial_load(self, sddmm):
        """precompute(C(i,k), {k}, {kw}, C_on) places the where inside j."""
        A, B, C, D, (i, j, k) = sddmm
        kw = index_vars("kw")[0]
        C_on = Tensor("C_on", (C.shape[1],), DENSE_VECTOR(onChip))
        out = A.get_index_stmt().precompute(C[i, k], [k], [kw], C_on)
        # forall(i) forall(j) (forall(k) A += B*C_on(k)*D where
        #   forall(kw) C_on(kw) = C(i,kw))
        loops, inner = forall_chain(out.cin)
        assert [f.ivar for f in loops] == [i, j]
        assert isinstance(inner, Where)
        cons_loops, cons_inner = forall_chain(inner.consumer)
        assert [f.ivar for f in cons_loops] == [k]
        assert any(a.tensor is C_on for a in cons_inner.rhs.accesses())
        prod_loops, prod_inner = forall_chain(inner.producer)
        assert [f.ivar for f in prod_loops] == [kw]
        assert prod_inner.lhs.tensor is C_on

    def test_figure6b_full_load(self, sddmm):
        """precompute(C(i,k), {i,k}, {iw,kw}, C_on) hoists above i."""
        A, B, C, D, (i, j, k) = sddmm
        iw, kw = index_vars("iw kw")
        C_on = Tensor("C_on", C.shape, DENSE_MATRIX(onChip))
        out = A.get_index_stmt().precompute(C[i, k], [i, k], [iw, kw], C_on)
        assert isinstance(out.cin, Where)
        prod_loops, _ = forall_chain(out.cin.producer)
        assert [f.ivar for f in prod_loops] == [iw, kw]
        cons_loops, _ = forall_chain(out.cin.consumer)
        assert [f.ivar for f in cons_loops] == [i, j, k]

    def test_workspace_order_mismatch(self, spmv_stmt):
        stmt, (i, j), (A, x, y) = spmv_stmt
        ws = scalar("ws", onChip)
        with pytest.raises(ScheduleError, match="order"):
            stmt.precompute(A[i, j] * x[j], [j], [j], ws)

    def test_missing_expression(self, spmv_stmt):
        stmt, (i, j), (A, x, y) = spmv_stmt
        ws = scalar("ws", onChip)
        with pytest.raises(ScheduleError, match="no assignment contains"):
            stmt.precompute(x[j] + x[j], [], [], ws)

    def test_consumer_keeps_accumulate_after_init(self):
        """Sequence-split statements keep += on the reduction consumer."""
        A = Tensor("A", (4, 5), CSR(offChip))
        x = Tensor("x", (5,), DENSE_VECTOR(offChip))
        b = Tensor("b", (4,), DENSE_VECTOR(offChip))
        y = Tensor("y", (4,), DENSE_VECTOR(offChip))
        i, j = index_vars("i j")
        term = A[i, j] * x[j]
        y[i] = b[i] - term
        ws = scalar("ws", onChip)
        stmt = y.get_index_stmt().precompute(term, [], [], ws)
        consumers = [
            a for a in stmt.cin.assignments()
            if a.lhs.tensor is y and any(
                acc.tensor is ws for acc in a.rhs.accesses()
            )
        ]
        assert len(consumers) == 1
        assert consumers[0].accumulate


class TestMapAccelerate:
    def test_map_wraps_forall(self, spmv_stmt):
        stmt, (i, j), _ = spmv_stmt
        ws = scalar("ws", onChip)
        stmt = stmt.precompute(stmt.assignment.rhs, [], [], ws)
        out = stmt.map(j, "Spatial", "Reduction", 16)
        mapped = [s for s in out.cin.walk() if isinstance(s, MapCall)]
        assert len(mapped) == 1
        assert mapped[0].backend == "Spatial"
        assert mapped[0].func == "Reduction"
        assert isinstance(mapped[0].original, Forall)
        assert mapped[0].original.ivar is j

    def test_map_unknown_var(self, spmv_stmt):
        stmt, _, _ = spmv_stmt
        z = index_vars("z")[0]
        with pytest.raises(ScheduleError):
            stmt.map(z, "Spatial", "Reduction")

    def test_accelerate_formats_in_str(self, spmv_stmt):
        stmt, (i, j), _ = spmv_stmt
        ws = scalar("ws", onChip)
        stmt = stmt.precompute(stmt.assignment.rhs, [], [], ws)
        out = stmt.accelerate(j, "Spatial", "Reduction", 16)
        assert "Reduction[Spatial]" in format_stmt(out.cin)

    def test_map_tensors_exposed(self, spmv_stmt):
        stmt, (i, j), (A, x, y) = spmv_stmt
        ws = scalar("ws", onChip)
        stmt = stmt.precompute(stmt.assignment.rhs, [], [], ws)
        out = stmt.map(j, "Spatial", "Reduction")
        mapped = [s for s in out.cin.walk() if isinstance(s, MapCall)][0]
        assert {t.name for t in mapped.tensors} == {"A", "x", "ws"}
