"""Unit tests for the Spatial IR and its code generator."""

import pytest

from repro.spatial.codegen import count_loc, format_expr, generate
from repro.spatial.ir import (
    Assign,
    BitVectorDecl,
    BitVectorOp,
    Comment,
    DenseCounter,
    DramDecl,
    Enq,
    FifoDecl,
    Foreach,
    LoadBulk,
    MemReduce,
    RegDecl,
    ReducePat,
    SBin,
    ScanCounter,
    SDeq,
    SLit,
    SRead,
    SRegRead,
    SSelect,
    SValid,
    SVar,
    SpatialProgram,
    SramDecl,
    SramWrite,
    StreamStore,
    sadd,
    smul,
    ssub,
)


class TestExpressionFolding:
    def test_add_zero_dropped(self):
        assert sadd(SLit(0), SVar("x")) == SVar("x")
        assert sadd(SVar("x"), SLit(0)) == SVar("x")

    def test_mul_identity_and_zero(self):
        assert smul(SLit(1), SVar("x")) == SVar("x")
        assert smul(SVar("x"), SLit(0)) == SLit(0)

    def test_constant_folding(self):
        assert sadd(SLit(2), SLit(3)) == SLit(5)
        assert smul(SLit(4), SLit(3)) == SLit(12)
        assert ssub(SLit(4), SLit(3)) == SLit(1)

    def test_sub_zero(self):
        assert ssub(SVar("x"), SLit(0)) == SVar("x")

    def test_no_fold_on_vars(self):
        e = sadd(SVar("a"), SVar("b"))
        assert isinstance(e, SBin) and e.op == "+"

    def test_walk(self):
        e = sadd(smul(SVar("a"), SVar("b")), SLit(1))
        names = [n.name for n in e.walk() if isinstance(n, SVar)]
        assert names == ["a", "b"]


class TestFormatExpr:
    def test_literals(self):
        assert format_expr(SLit(3)) == "3"
        assert format_expr(SLit(2.5)) == "2.5"

    def test_binary(self):
        assert format_expr(SBin("+", SVar("a"), SLit(1))) == "(a + 1)"

    def test_reads(self):
        assert format_expr(SRead("mem", SVar("i"))) == "mem(i)"
        assert format_expr(SDeq("f")) == "f.deq"
        assert format_expr(SRegRead("r")) == "r.value"

    def test_select_and_valid(self):
        e = SSelect(SValid(SVar("p")), SRead("v", SVar("p")), SLit(0))
        assert format_expr(e) == "mux(p.valid, v(p), 0)"

    def test_unknown_rejected(self):
        with pytest.raises(TypeError):
            format_expr(object())


def _program(accel, env=None, dram=()):
    return SpatialProgram("k", env or {}, (), tuple(dram), tuple(accel), {})


class TestCodegen:
    def test_foreach_header(self):
        p = _program([Foreach(DenseCounter(SVar("N")), ("i",), (), par=4)])
        src = generate(p)
        assert "Foreach(N by 1 par 4) { i =>" in src

    def test_foreach_par1_omits_par(self):
        p = _program([Foreach(DenseCounter(SVar("N")), ("i",), ())])
        assert "par" not in generate(p).split("Accel")[1].split("{ i")[0]

    def test_scan_counter_header(self):
        c = ScanCounter("bva", "bvb", "or", SVar("N"))
        p = _program([Foreach(c, ("pa", "pb", "po", "i"), (), par=8)])
        src = generate(p)
        assert "Scan(par=8, len=N, bva.deq, bvb.deq, op=or)" in src

    def test_reduce_block(self):
        r = ReducePat("acc", DenseCounter(SLit(4)), ("i",),
                      (Assign("v", SVar("i")),), SVar("v"), "+", par=2)
        src = generate(_program([RegDecl("acc", 0.0), r]))
        assert "Reduce(acc)(4 by 1 par 2) { i =>" in src
        assert "} { _ + _ }" in src

    def test_memreduce_block(self):
        m = MemReduce("out", DenseCounter(SLit(2)), ("i",), (),
                      "tile", "+", par=1, mem_par=2)
        src = generate(_program([m]))
        assert "MemReduce(out par 2)(2 by 1) { i =>" in src

    def test_memories(self):
        src = generate(_program([
            SramDecl("s", SLit(8)),
            SramDecl("sp", SLit(8), sparse=True),
            FifoDecl("f", 16),
            RegDecl("r", 0.0),
            BitVectorDecl("bv", SLit(64)),
        ]))
        assert "val s = SRAM[T](8)" in src
        assert "val sp = SparseSRAM[T](8)" in src
        assert "val f = FIFO[T](16)" in src
        assert "val r = Reg[T](0.0.to[T])" in src
        assert "val bv = BitVector(64)" in src

    def test_transfers(self):
        src = generate(_program(
            [
                SramDecl("s", SLit(8)),
                LoadBulk("s", "d", SLit(0), SLit(8), par=4),
                StreamStore("d", "f", SVar("off"), SVar("len")),
            ],
            dram=[DramDecl("d", SLit(8))],
        ))
        assert "s load d(0::8 par 4)" in src
        assert "d stream_store_vec(off, f, len)" in src

    def test_atomic_write(self):
        src = generate(_program([
            SramDecl("s", SLit(4)),
            SramWrite("s", SLit(0), SLit(1.0), accumulate=True, atomic=True),
        ]))
        assert "s(0).atomicAdd(1)" in src

    def test_bitvector_op(self):
        src = generate(_program([BitVectorOp("u", "a", "b", "or")]))
        assert "u = a or b" in src

    def test_env_and_sparse_dram(self):
        p = _program([], env={"innerPar": 16},
                     dram=[DramDecl("x", SLit(4), sparse=True)])
        src = generate(p)
        assert "val innerPar = 16" in src
        assert "SparseDRAM[T](4)" in src

    def test_comments_excluded_from_loc(self):
        src = generate(_program([Comment("hello"), Enq("f", SLit(1))]))
        with_comment = src
        assert count_loc(with_comment) == count_loc(
            src.replace("// hello\n", "")
        )


class TestProgramHelpers:
    def test_patterns_enumeration(self):
        inner = Foreach(DenseCounter(SLit(2)), ("j",), ())
        outer = Foreach(DenseCounter(SLit(3)), ("i",), (inner,))
        p = _program([outer])
        pats = p.patterns()
        assert len(pats) == 2
        assert pats[0] is outer

    def test_decls_of(self):
        p = _program([SramDecl("a", SLit(1)), FifoDecl("b")])
        assert len(p.decls_of(SramDecl)) == 1
        assert len(p.decls_of(FifoDecl)) == 1


class TestUtilLoc:
    def test_block_comments(self):
        from repro.util import count_loc as uloc

        src = "/* block\n comment */\nint a;\n// line\nint b;\n"
        assert uloc(src) == 2

    def test_reduction_pct(self):
        from repro.util import loc_reduction

        assert loc_reduction(10, 52) == pytest.approx(80.77, abs=0.01)
        with pytest.raises(ValueError):
            loc_reduction(1, 0)


class TestAsciiPlots:
    def test_xy_contains_series(self):
        from repro.util import ascii_xy

        text = ascii_xy({"a": {1: 1.0, 10: 10.0}, "b": {1: 2.0, 10: 2.0}},
                        title="t")
        assert "t" in text and "o=a" in text and "x=b" in text

    def test_bars(self):
        from repro.util import ascii_bars

        text = ascii_bars({"one": 1.0, "ten": 10.0})
        assert "one" in text and "#" in text

    def test_empty(self):
        from repro.util import ascii_bars, ascii_xy

        assert "empty" in ascii_xy({})
        assert "empty" in ascii_bars({})
