"""Unit tests for workload-statistics extraction."""

import numpy as np
import pytest

from repro.capstan.stats import compute_stats
from repro.core import compile_stmt
from tests.helpers_kernels import build_small_kernel_stmt


def stats_for(name: str, density: float = 0.4, seed: int = 42):
    stmt, out, tensors = build_small_kernel_stmt(name, seed=seed, density=density)
    kernel = compile_stmt(stmt, name.lower())
    return compute_stats(kernel), kernel, tensors


class TestSpmvStats:
    def test_loop_iters_exact(self):
        stats, kernel, tensors = stats_for("SpMV")
        nnz = tensors["A"].nnz
        rows = tensors["A"].shape[0]
        assert stats.loop("i").iters == rows
        assert stats.loop("j").iters == nnz
        assert stats.loop("j").launches == rows

    def test_gathers_counted(self):
        stats, _, tensors = stats_for("SpMV")
        # One x gather per nonzero.
        assert stats.gather_elems == tensors["A"].nnz

    def test_traffic_includes_all_arrays(self):
        stats, _, tensors = stats_for("SpMV")
        A = tensors["A"].storage
        x_len = tensors["x"].shape[0]
        expected_reads = (
            len(A.levels[1].pos) + len(A.levels[1].crd) + len(A.vals) + x_len
        ) * 4
        assert stats.dram_read_bytes == expected_reads

    def test_output_writes(self):
        stats, _, tensors = stats_for("SpMV")
        assert stats.dram_write_bytes == tensors["y"].shape[0] * 4

    def test_kind_labels(self):
        stats, _, _ = stats_for("SpMV")
        assert stats.loop("i").kind == "dense"
        assert stats.loop("j").kind == "compressed"
        assert stats.loop("j").is_innermost


class TestScanStats:
    def test_innerprod_intersection_counts(self):
        stats, _, tensors = stats_for("InnerProd")
        b = tensors["B"].to_dense() != 0
        c = tensors["C"].to_dense() != 0
        both = b & c
        # j-level: matched (i, j) prefix pairs; k-level: matched coords.
        ij_b = np.any(b, axis=2)
        ij_c = np.any(c, axis=2)
        assert stats.loop("j").iters == int((ij_b & ij_c).sum())
        assert stats.loop("k").iters == int(both.sum())

    def test_plus2_union_counts(self):
        stats, _, tensors = stats_for("Plus2")
        b = tensors["B"].to_dense() != 0
        c = tensors["C"].to_dense() != 0
        either = b | c
        ij = np.any(b, axis=2) | np.any(c, axis=2)
        assert stats.loop("j").iters == int(ij.sum())
        assert stats.loop("k").iters == int(either.sum())

    def test_plus3_workspace_union(self):
        stats, _, tensors = stats_for("Plus3")
        b = tensors["B"].to_dense() != 0
        c = tensors["C"].to_dense() != 0
        d = tensors["D"].to_dense() != 0
        assert stats.loop("jw").iters == int((b | c).sum())
        assert stats.loop("j").iters == int((b | c | d).sum())

    def test_scan_words_scale_with_launches(self):
        stats, _, tensors = stats_for("Plus2")
        rows = tensors["B"].shape[0]
        j_loop = stats.loop("j")
        assert j_loop.scan_words > 0
        assert j_loop.launches == rows

    def test_bv_coords_counted(self):
        stats, _, tensors = stats_for("InnerProd")
        j_loop = stats.loop("j")
        # Both operands' level-1 fibers stream into Gen BV blocks.
        assert j_loop.bv_coords > 0


class TestRestriction:
    def test_intersection_restricts_deeper_levels(self):
        """InnerProd's k segments only load for matched (i,j) pairs."""
        stats, _, tensors = stats_for("InnerProd", density=0.15)
        b = tensors["B"].to_dense() != 0
        c = tensors["C"].to_dense() != 0
        matched = (np.any(b, axis=2) & np.any(c, axis=2))
        # bv coords at the k level = entries within matched fibers.
        k_loop = stats.loop("k")
        b_matched = int((b & matched[:, :, None]).sum())
        c_matched = int((c & matched[:, :, None]).sum())
        assert k_loop.bv_coords == b_matched + c_matched


class TestDenseStats:
    def test_mttkrp_dense_inner(self):
        stats, _, tensors = stats_for("MTTKRP")
        nnz = tensors["B"].nnz
        r = tensors["C"].shape[0]
        assert stats.loop("j").iters == nnz * r
        assert stats.loop("j").kind == "dense"

    def test_flops_positive_and_scaled(self):
        stats, _, _ = stats_for("SDDMM")
        assert stats.flops > 0

    def test_slice_traffic_tracked(self):
        stats, _, tensors = stats_for("SDDMM")
        assert stats.slice_read_bytes > 0
        assert stats.slice_read_bytes <= stats.dram_read_bytes

    def test_vector_par_assignment(self):
        stats, _, _ = stats_for("SDDMM")
        assert stats.loop("k").vector_par == 16
        assert stats.loop("i").vector_par == 1


class TestAggregates:
    def test_totals_consistent(self):
        stats, _, _ = stats_for("Plus2")
        assert stats.dram_total_bytes == (
            stats.dram_read_bytes + stats.dram_write_bytes
        )
        assert stats.total_scan_words == sum(
            l.scan_words for l in stats.loops
        )

    def test_unknown_loop_lookup(self):
        stats, _, _ = stats_for("SpMV")
        with pytest.raises(KeyError):
            stats.loop("zz")

    def test_innermost_iters(self):
        stats, _, tensors = stats_for("SpMV")
        assert stats.innermost_iters == tensors["A"].nnz
