"""The ``repro serve`` daemon: HTTP round-trips, coalescing, admission
control, timeouts, the queue-pool miss path, and graceful drain."""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro.api as api
from repro.service.server import ServeConfig, ServeError, ServiceThread

TINY = 0.02


def _post(port: int, path: str, body: dict, timeout: float = 60.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("POST", path, body=json.dumps(body),
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


def _get(port: int, path: str):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


def _fake_result(request: api.CompileRequest) -> api.CompileResult:
    return api.CompileResult(request=request.resolved(),
                             seconds={api.BASELINE_PLATFORM: 1.0})


class TestRoundTrip:
    def test_byte_identical_to_serial_evaluate(self, fresh_cache):
        with ServiceThread(ServeConfig(port=0, pool="inline:2")) as svc:
            status, body = _post(svc.port, "/evaluate",
                                 {"kernel": "SpMV", "dataset": "bcsstk30",
                                  "scale": TINY})
            assert status == 200
            serial = api.evaluate(api.CompileRequest(
                kernel="SpMV", dataset="bcsstk30", scale=TINY))
            assert body == serial.to_json().encode()

            # Warm repeat: answered from the staged cache, same bytes.
            status, again = _post(svc.port, "/evaluate",
                                  {"kernel": "SpMV", "dataset": "bcsstk30",
                                   "scale": TINY})
            assert status == 200
            assert again == body

            status, compiled = _post(svc.port, "/compile",
                                     {"kernel": "SpMV", "scale": TINY})
            assert status == 200
            serial_compile = api.compile(api.CompileRequest(
                kernel="SpMV", scale=TINY, action="compile"))
            assert compiled == serial_compile.to_json().encode()

            _status, stats = _get(svc.port, "/stats")
            serve = json.loads(stats)["serve"]
            assert serve["requests"] == 3
            assert serve["cache_hits"] >= 1

    def test_protocol_errors(self, fresh_cache):
        with ServiceThread(ServeConfig(port=0, pool="inline:1")) as svc:
            assert _post(svc.port, "/evaluate",
                         {"kernel": "NoSuch"})[0] == 400
            assert _post(svc.port, "/evaluate",
                         {"kernel": "SpMV", "sclae": 1})[0] == 400
            assert _post(svc.port, "/elsewhere", {})[0] == 404
            assert _get(svc.port, "/evaluate")[0] == 405
            assert _get(svc.port, "/healthz")[0] == 200
            conn = http.client.HTTPConnection("127.0.0.1", svc.port,
                                              timeout=30)
            try:
                conn.request("POST", "/evaluate", body=b"{not json")
                resp = conn.getresponse()
                assert resp.status == 400
                assert "error" in json.loads(resp.read())
            finally:
                conn.close()


class TestCoalescing:
    def test_identical_concurrent_requests_compute_once(self, fresh_cache):
        calls = []
        gate = threading.Event()

        def execute(request, use_cache):
            calls.append(request)
            gate.wait(timeout=10)
            return _fake_result(request)

        config = ServeConfig(port=0, pool="inline:4", execute=execute)
        with ServiceThread(config) as svc:
            results = []

            def client():
                results.append(_post(svc.port, "/evaluate",
                                     {"kernel": "SpMV", "scale": TINY}))

            threads = [threading.Thread(target=client) for _ in range(8)]
            for t in threads:
                t.start()
            # Let every client join the in-flight future, then release.
            deadline = time.time() + 10
            while time.time() < deadline:
                if json.loads(_get(svc.port, "/stats")[1])["serve"][
                        "coalesced"] >= 7:
                    break
                time.sleep(0.01)
            gate.set()
            for t in threads:
                t.join(timeout=30)

            assert len(calls) == 1  # exactly one underlying compile
            assert [s for s, _ in results] == [200] * 8
            assert len({body for _, body in results}) == 1
            serve = json.loads(_get(svc.port, "/stats")[1])["serve"]
            assert serve["coalesced"] == 7
            assert serve["computed"] == 1


class TestAdmissionAndTimeouts:
    def test_429_beyond_max_inflight(self, fresh_cache):
        gate = threading.Event()

        def execute(request, use_cache):
            gate.wait(timeout=10)
            return _fake_result(request)

        config = ServeConfig(port=0, pool="inline:2", max_inflight=1,
                             execute=execute)
        with ServiceThread(config) as svc:
            first = []
            t = threading.Thread(target=lambda: first.append(
                _post(svc.port, "/evaluate", {"kernel": "SpMV",
                                              "scale": TINY})))
            t.start()
            deadline = time.time() + 10
            while time.time() < deadline:
                if json.loads(_get(svc.port, "/stats")[1])["serve"][
                        "inflight"] >= 1:
                    break
                time.sleep(0.01)
            # A *different* request cannot start a second job.
            status, body = _post(svc.port, "/evaluate",
                                 {"kernel": "Plus2", "scale": TINY})
            assert status == 429
            assert "in flight" in json.loads(body)["error"]
            gate.set()
            t.join(timeout=30)
            assert first[0][0] == 200
            serve = json.loads(_get(svc.port, "/stats")[1])["serve"]
            assert serve["rejected"] == 1

    def test_timeout_returns_clean_504(self, fresh_cache):
        release = threading.Event()

        def execute(request, use_cache):
            release.wait(timeout=10)
            return _fake_result(request)

        config = ServeConfig(port=0, pool="inline:1", execute=execute)
        with ServiceThread(config) as svc:
            status, body = _post(svc.port, "/evaluate",
                                 {"kernel": "SpMV", "scale": TINY,
                                  "timeout": 0.1})
            assert status == 504
            error = json.loads(body)
            assert "timed out" in error["error"]
            release.set()
            serve = json.loads(_get(svc.port, "/stats")[1])["serve"]
            assert serve["timeouts"] == 1

    def test_worker_error_surfaces_as_500(self, fresh_cache):
        def execute(request, use_cache):
            raise RuntimeError("compiler exploded")

        with ServiceThread(ServeConfig(port=0, pool="inline:1",
                                       execute=execute)) as svc:
            status, body = _post(svc.port, "/evaluate",
                                 {"kernel": "SpMV", "scale": TINY})
            assert status == 500
            assert "compiler exploded" in json.loads(body)["error"]


class TestStatsParity:
    def test_stats_matches_cache_json_cli(self, fresh_cache, capsys):
        from repro.__main__ import main

        with ServiceThread(ServeConfig(port=0, pool="inline:1")) as svc:
            _post(svc.port, "/evaluate", {"kernel": "SpMV", "scale": TINY})
            cache_section = json.loads(_get(svc.port, "/stats")[1])["cache"]
        assert main(["cache", "--json"]) == 0
        cli = json.loads(capsys.readouterr().out)
        # One shared formatter: same shape, same identity fields. (The
        # hit/miss counters keep moving between the two reads.)
        assert set(cli) == set(cache_section)
        assert cli["compiler"] == cache_section["compiler"]
        assert cli["disk"]["dir"] == cache_section["disk"]["dir"]
        assert set(cli["counters"]) == set(cache_section["counters"])


class TestQueuePool:
    def test_misses_flow_through_queue_workers(self, fresh_cache, tmp_path):
        from repro.pipeline.fsqueue import worker_loop

        qdir = tmp_path / "serve-queue"
        stop = threading.Event()
        config = ServeConfig(port=0, pool=f"queue:{qdir}", queue_poll=0.05)
        with ServiceThread(config) as svc:
            worker = threading.Thread(
                target=worker_loop, args=(qdir,),
                kwargs=dict(poll=0.05, should_exit=stop.is_set),
                daemon=True)
            worker.start()
            try:
                status, body = _post(svc.port, "/evaluate",
                                     {"kernel": "SpMV",
                                      "dataset": "bcsstk30", "scale": TINY})
                assert status == 200
                serial = api.evaluate(api.CompileRequest(
                    kernel="SpMV", dataset="bcsstk30", scale=TINY))
                assert body == serial.to_json().encode()
            finally:
                stop.set()
                worker.join(timeout=10)
        assert not worker.is_alive()

    def test_bad_pool_spec_rejected(self):
        with pytest.raises(ServeError, match="pool"):
            ServiceThread(ServeConfig(port=0, pool="carrier-pigeon")).start()


class TestDrain:
    def test_drain_finishes_inflight_work(self, fresh_cache):
        started = threading.Event()

        def execute(request, use_cache):
            started.set()
            time.sleep(0.3)
            return _fake_result(request)

        svc = ServiceThread(ServeConfig(port=0, pool="inline:1",
                                        execute=execute)).start()
        results = []
        t = threading.Thread(target=lambda: results.append(
            _post(svc.port, "/evaluate", {"kernel": "SpMV", "scale": TINY})))
        t.start()
        assert started.wait(timeout=10)
        svc.stop()  # begins the drain and joins the serve thread
        t.join(timeout=30)
        assert results and results[0][0] == 200

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        from repro.pipeline.dispatch import worker_env

        env = worker_env()
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--pool", "inline:2", "--quiet"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)
        try:
            banner = proc.stdout.readline()
            assert "serving on http://" in banner, banner
            port = int(banner.split("http://")[1].split()[0].rsplit(":", 1)[1])
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
            conn.request("POST", "/evaluate",
                         body=json.dumps({"kernel": "Plus2", "scale": TINY}))
            # SIGTERM lands while the (cold) request is in flight; the
            # drain must still answer it before the process exits.
            proc.send_signal(signal.SIGTERM)
            resp = conn.getresponse()
            body = resp.read()
            conn.close()
            assert resp.status == 200, body
            assert json.loads(body)["seconds"]
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.stdout.close()
            proc.stderr.close()
