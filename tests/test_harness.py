"""Smoke tests for the evaluation harness (tiny scale)."""

import pytest

from repro.api import CompileRequest, build, evaluate
from repro.eval.harness import (
    figure12,
    figure13,
    format_figure12,
    format_table3,
    format_table5,
    format_table6,
    table3,
    table5,
    table6,
)
from repro.kernels import KERNEL_ORDER

TINY = 0.02


def test_build_kernel_compiles():
    kernel = build(CompileRequest(kernel="SpMV", dataset="bcsstk30",
                                  scale=TINY))
    assert kernel.spatial_loc > 10


def test_evaluate_platforms_present():
    times = evaluate(CompileRequest(kernel="SpMV", dataset="bcsstk30",
                                    scale=TINY)).platform_times()
    assert {"Capstan (Ideal)", "Capstan (HBM2E)", "Capstan (DDR4)",
            "V100 GPU", "128-Thread CPU",
            "Capstan (HBM2E, handwritten)",
            "Plasticine (HBM2E, handwritten)"} == set(times.seconds)
    norm = times.normalised()
    assert norm["Capstan (HBM2E)"] == 1.0


def test_evaluate_non_spmv_has_no_handwritten_rows():
    times = evaluate(CompileRequest(kernel="Plus2", dataset="random3-1pct",
                                    scale=0.2)).platform_times()
    assert "Plasticine (HBM2E, handwritten)" not in times.seconds


def test_table3_rows_complete():
    rows = table3(TINY)
    assert set(rows) == set(KERNEL_ORDER)
    text = format_table3(rows)
    assert "SpMV productivity" in text


def test_table5_rows_complete():
    res = table5(TINY)
    assert set(res) == set(KERNEL_ORDER)
    assert "limit=" in format_table5(res)


@pytest.mark.slow
def test_table6_and_figures_tiny():
    results = table6(0.05)
    assert set(results["Capstan (HBM2E)"]) == set(KERNEL_ORDER)
    text = format_table6(results)
    assert "gmean" in text
    series = figure13(0.05)
    assert set(series) == {"Capstan", "GPU", "CPU"}


def test_figure12_series_shape():
    series = figure12(0.05)
    assert set(series) == set(KERNEL_ORDER)
    for points in series.values():
        assert points[20] == pytest.approx(1.0)
    assert "Figure 12" in format_figure12(series)
