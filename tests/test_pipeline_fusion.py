"""Fused expression pipelines: cut heuristics, transparency, traffic."""

import dataclasses

import numpy as np
import pytest

from repro.capstan.stats import compute_stats
from repro.core.compiler import compile_stmt
from repro.core.coiteration import stream_compatible
from repro.formats import (
    CSC,
    CSR,
    DENSE_VECTOR,
    SPARSE_VECTOR,
    Format,
    compressed,
    dense,
    offChip,
)
from repro.ir import index_vars
from repro.pipeline.fusion import (
    PIPELINE_ORDER,
    PIPELINES,
    FusionError,
    PipelineRequest,
    PipelineStage,
    run_pipeline,
)
from repro.schedule.stmt import INNER_PAR, OUTER_PAR
from repro.tensor import Tensor

TINY = 0.05
DATASET = "random-10pct"


def _run(spec_or_name, **kw):
    kw.setdefault("scale", TINY)
    kw.setdefault("use_cache", False)
    return run_pipeline(spec_or_name, DATASET, **kw)


def _decisions(row):
    return {d["intermediate"]: d for d in row["decisions"]}


# ---------------------------------------------------------------------------
# The shipped registry
# ---------------------------------------------------------------------------


def test_attention_streams_the_scores():
    row = _run("attention")
    d = _decisions(row)["S"]
    assert d["streamed"] and d["reason"] == "streamed"
    assert row["elided_bytes"] > 0
    assert row["reduction_pct"] > 0


def test_twohop_cuts_on_gathered_reuse():
    row = _run("twohop")
    d = _decisions(row)["y"]
    assert not d["streamed"]
    assert "reuse" in d["reason"]
    assert row["elided_bytes"] == 0


def test_cgstep_streams_the_spmv_result():
    row = _run("cgstep")
    d = _decisions(row)["q"]
    assert d["streamed"]
    assert row["reduction_pct"] > 0


@pytest.mark.parametrize("name", PIPELINE_ORDER)
def test_fusion_is_numerically_transparent(name):
    """Fused and --no-fuse runs must agree bit-for-bit (the CI gate)."""
    fused = _run(name, fuse=True)
    unfused = _run(name, fuse=False)
    assert fused["outputs"] == unfused["outputs"]
    assert unfused["reduction_pct"] == 0.0
    assert all(d["reason"] == "fusion disabled (--no-fuse)"
               for d in unfused["decisions"])


def test_vectorized_engine_validates_against_oracle():
    """Every stage of a numpy-engine run passes the 1e-8 oracle check
    (bitwise equality across engines is NOT guaranteed — summation order
    differs — which is why artefact rows are computed on the oracle)."""
    row = _run("attention", engine="numpy")
    assert row["engine"] == "numpy"
    assert row["outputs"].keys() == _run("attention",
                                         engine="interp")["outputs"].keys()


def test_unknown_dataset_is_rejected():
    with pytest.raises(FusionError, match="not evaluated"):
        run_pipeline("attention", "no-such-matrix", use_cache=False)


# ---------------------------------------------------------------------------
# Cut heuristics that must refuse to fuse
# ---------------------------------------------------------------------------


def _ewise_stage(name, out_name, a, b):
    """out[i] = a[i] + b[i]: consumes its inputs in production order."""

    def build(env):
        ta, tb = env[a], env[b]
        t = Tensor(out_name, ta.shape, DENSE_VECTOR(offChip))
        i, = index_vars("i")
        t[i] = ta[i] + tb[i]
        stmt = (t.get_index_stmt().environment(INNER_PAR, 16)
                .environment(OUTER_PAR, 4))
        return stmt, t

    return build


def _vec_setup(dims, coords, vals, rng):
    n = dims[0]
    a = Tensor("a", (n,), DENSE_VECTOR(offChip)).from_dense(rng.random(n))
    b = Tensor("b", (n,), DENSE_VECTOR(offChip)).from_dense(rng.random(n))
    mask = rng.random(n) < 0.5
    s = Tensor("s", (n,), SPARSE_VECTOR(offChip)).from_dense(
        rng.random(n) * mask)
    return {"a": a, "b": b, "s": s}


def _chain(stages):
    return PipelineRequest(
        name="custom",
        description="test pipeline",
        stages=tuple(stages),
        datasets=(DATASET,),
        setup=_vec_setup,
    )


def test_multi_consumer_intermediate_is_cut():
    spec = _chain([
        PipelineStage("make", "m", ("a", "b"), _ewise_stage("make", "m", "a", "b")),
        PipelineStage("use1", "u", ("m", "a"), _ewise_stage("use1", "u", "m", "a")),
        PipelineStage("use2", "v", ("m", "u"), _ewise_stage("use2", "v", "m", "u")),
    ])
    fused = _run(spec, fuse=True)
    d = _decisions(fused)["m"]
    assert not d["streamed"]
    assert "multi-consumer" in d["reason"]
    assert d["consumer"] == "use1+use2"
    # u has one consumer and ordered consumption: it still streams.
    assert _decisions(fused)["u"]["streamed"]
    assert fused["outputs"] == _run(spec, fuse=False)["outputs"]


def test_format_mismatch_is_cut():
    def consume(env):
        m, b = env["m"], env["b"]
        t = Tensor("u", b.shape, SPARSE_VECTOR(offChip))
        i, = index_vars("i")
        t[i] = m[i] * b[i]
        stmt = (t.get_index_stmt().environment(INNER_PAR, 16)
                .environment(OUTER_PAR, 4))
        return stmt, t

    spec = _chain([
        PipelineStage("make", "m", ("a", "b"), _ewise_stage("make", "m", "a", "b")),
        PipelineStage("use", "u", ("m", "b"), consume,
                      input_formats={"m": SPARSE_VECTOR(offChip)}),
    ])
    fused = _run(spec, fuse=True)
    d = _decisions(fused)["m"]
    assert not d["streamed"]
    assert "format mismatch" in d["reason"]
    assert fused["outputs"] == _run(spec, fuse=False)["outputs"]


def test_unordered_producer_is_cut():
    assert stream_compatible(CSR(offChip), CSC(offChip)) is not None
    unordered_csr = Format(
        [dense, dataclasses.replace(compressed, ordered=False)], offChip)
    reason = stream_compatible(unordered_csr, unordered_csr)
    assert reason is not None and "unordered producer" in reason
    ordered = CSR(offChip)
    assert stream_compatible(ordered, ordered) is None


def test_unordered_vector_producer_forces_pipeline_cut():
    unordered_vec = Format(
        [dataclasses.replace(compressed, ordered=False)], offChip)

    def make_sparse(env):
        s, a = env["s"], env["a"]
        t = Tensor("m", s.shape, unordered_vec)
        i, = index_vars("i")
        t[i] = s[i] * a[i]
        stmt = (t.get_index_stmt().environment(INNER_PAR, 16)
                .environment(OUTER_PAR, 4))
        return stmt, t

    def consume(env):
        m, b = env["m"], env["b"]
        t = Tensor("u", b.shape, SPARSE_VECTOR(offChip))
        i, = index_vars("i")
        t[i] = m[i] * b[i]
        stmt = (t.get_index_stmt().environment(INNER_PAR, 16)
                .environment(OUTER_PAR, 4))
        return stmt, t

    spec = _chain([
        PipelineStage("make", "m", ("s", "a"), make_sparse),
        PipelineStage("use", "u", ("m", "b"), consume,
                      input_formats={"m": unordered_vec}),
    ])
    fused = _run(spec, fuse=True)
    d = _decisions(fused)["m"]
    assert not d["streamed"]
    assert "unordered producer" in d["reason"]
    assert fused["outputs"] == _run(spec, fuse=False)["outputs"]


# ---------------------------------------------------------------------------
# Traffic accounting for streamed connections
# ---------------------------------------------------------------------------


def test_stream_marks_elide_traffic():
    A = Tensor("A", (8, 8), CSR(offChip))
    A.from_dense(np.eye(8))
    x = Tensor("x", (8,), DENSE_VECTOR(offChip)).from_dense(np.ones(8))
    y = Tensor("y", (8,), DENSE_VECTOR(offChip))
    i, j = index_vars("i j")
    y[i] = A[i, j] * x[j]
    kernel = compile_stmt(y.get_index_stmt(), name="stream-probe",
                          cache=False)
    base = compute_stats(kernel)
    elided_in = compute_stats(kernel, stream_inputs=frozenset({"x"}))
    elided_out = compute_stats(kernel, stream_output=True)
    assert elided_in.dram_total_bytes < base.dram_total_bytes
    assert elided_out.dram_write_bytes == 0
    assert elided_out.dram_read_bytes == base.dram_read_bytes


def test_streamed_compile_notes_and_source():
    A = Tensor("A", (8, 8), CSR(offChip))
    A.from_dense(np.eye(8))
    x = Tensor("x", (8,), DENSE_VECTOR(offChip)).from_dense(np.ones(8))
    y = Tensor("y", (8,), DENSE_VECTOR(offChip))
    i, j = index_vars("i j")
    y[i] = A[i, j] * x[j]
    stmt = y.get_index_stmt()
    plain = compile_stmt(stmt, name="probe", cache=False)
    fused = compile_stmt(stmt, name="probe", cache=False,
                         streamed=frozenset({"x"}))
    assert "stream: x" in fused.source
    assert "stream:" not in plain.source
    # The stream marks change the model, never the executable program.
    np.testing.assert_allclose(fused.run_dense(), plain.run_dense())


# ---------------------------------------------------------------------------
# The typed API surface
# ---------------------------------------------------------------------------


def test_pipeline_request_round_trip():
    from repro.api import CompileRequest

    req = CompileRequest(action="pipeline", kernel="attention",
                         scale=TINY, fuse=False).resolved()
    assert req.dataset == PIPELINES["attention"].datasets[0]
    assert req.stage == "pipeline"
    as_json = req.canonical_json()
    assert '"fuse":false' in as_json
    import json

    back = CompileRequest.from_dict(json.loads(as_json))
    assert back.canonical_json() == as_json


def test_non_pipeline_canonical_has_no_fuse_key():
    """Cache-key stability: existing compile/evaluate keys must not move."""
    from repro.api import CompileRequest

    for action in ("compile", "evaluate"):
        req = CompileRequest(action=action, kernel="SpMV").resolved()
        assert "fuse" not in req.canonical_json()


def test_pipeline_api_verb(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    from repro.api import CompileRequest, execute

    req = CompileRequest(action="pipeline", kernel="cgstep", scale=TINY)
    result = execute(req)
    assert result.pipeline["pipeline"] == "cgstep"
    assert result.pipeline["decisions"]
    again = execute(req)
    assert again.to_json() == result.to_json()
