"""Generality tests beyond the evaluation suite: higher-order tensors,
unusual expression shapes, and clear errors for unsupported mappings."""

import numpy as np
import pytest

from repro.core import compile_stmt
from repro.core.coiteration import LoweringError
from repro.formats import (
    CSR,
    DENSE_VECTOR,
    Format,
    compressed,
    offChip,
    onChip,
)
from repro.ir import index_vars
from repro.tensor import Tensor, evaluate_dense, scalar, to_dense


class TestFourDimensional:
    """Order-4 tensors exercise the full level chain depth."""

    def _tensor4(self, rng, density=0.3):
        shape = (3, 4, 5, 6)
        data = (rng.random(shape) < density) * rng.random(shape)
        fmt = Format([compressed] * 4, None, offChip)
        return Tensor("B", shape, fmt).from_dense(data), data

    def test_4d_tensor_times_vector(self, rng):
        """A(i,j,k) = sum_l B(i,j,k,l) * c(l) — a 4-D TTV."""
        B, _ = self._tensor4(rng)
        c = Tensor("c", (6,), DENSE_VECTOR(offChip)).from_dense(rng.random(6))
        A = Tensor("A", (3, 4, 5), Format([compressed] * 3, None, offChip))
        i, j, k, l = index_vars("i j k l")
        A[i, j, k] = B[i, j, k, l] * c[l]
        ws = scalar("ws", onChip)
        stmt = (A.get_index_stmt()
                .environment("innerPar", 16).environment("outerPar", 4)
                .precompute(B[i, j, k, l] * c[l], [], [], ws)
                .accelerate(l, "Spatial", "Reduction", par="innerPar"))
        kernel = compile_stmt(stmt, "ttv4")
        assert np.allclose(to_dense(kernel.run()),
                           evaluate_dense(A.get_assignment()))

    def test_4d_full_contraction(self, rng):
        """alpha = sum_ijkl B(i,j,k,l) * C(i,j,k,l)."""
        B, bdata = self._tensor4(rng)
        cdata = (rng.random((3, 4, 5, 6)) < 0.3) * rng.random((3, 4, 5, 6))
        # Reuse B's format class for C but different occupancy.
        C = Tensor("C", (3, 4, 5, 6), Format([compressed] * 4, None, offChip))
        C.from_dense(cdata)
        alpha = scalar("alpha_out", offChip)
        i, j, k, l = index_vars("i j k l")
        alpha[()] = B[i, j, k, l] * C[i, j, k, l]
        ws = scalar("ws", onChip)
        stmt = (alpha.get_index_stmt()
                .environment("innerPar", 16).environment("outerPar", 2)
                .precompute(B[i, j, k, l] * C[i, j, k, l], [], [], ws)
                .accelerate(l, "Spatial", "Reduction", par="innerPar"))
        kernel = compile_stmt(stmt, "inner4")
        got = float(kernel.run().vals[0])
        assert np.isclose(got, float((bdata * cdata).sum()))


class TestExpressionShapes:
    def test_scalar_scaling_of_sparse(self, rng):
        data = (rng.random((5, 6)) < 0.5) * rng.random((5, 6))
        B = Tensor("B", (5, 6), CSR(offChip)).from_dense(data)
        a = scalar("a")
        a.insert((), 2.5)
        Z = Tensor("Z", (5, 6), CSR(offChip))
        i, j = index_vars("i j")
        Z[i, j] = a[()] * B[i, j]
        kernel = compile_stmt(Z.get_index_stmt(), "scale")
        assert np.allclose(to_dense(kernel.run()), 2.5 * data)

    def test_literal_in_expression(self, rng):
        data = (rng.random((5, 6)) < 0.5) * rng.random((5, 6))
        B = Tensor("B", (5, 6), CSR(offChip)).from_dense(data)
        Z = Tensor("Z", (5, 6), CSR(offChip))
        i, j = index_vars("i j")
        Z[i, j] = B[i, j] * 3
        kernel = compile_stmt(Z.get_index_stmt(), "lit")
        assert np.allclose(to_dense(kernel.run()), 3 * data)

    def test_broadcast_row_and_col_vectors(self, rng):
        """Z = M * (r(i) + c(j)): sparse ∩ (dense ∪ dense)."""
        m = (rng.random((6, 7)) < 0.4) * rng.random((6, 7))
        M = Tensor("M", (6, 7), CSR(offChip)).from_dense(m)
        r = Tensor("r", (6,), DENSE_VECTOR(offChip)).from_dense(rng.random(6))
        c = Tensor("c", (7,), DENSE_VECTOR(offChip)).from_dense(rng.random(7))
        Z = Tensor("Z", (6, 7), CSR(offChip))
        i, j = index_vars("i j")
        Z[i, j] = M[i, j] * (r[i] + c[j])
        kernel = compile_stmt(Z.get_index_stmt(), "bias")
        expected = m * (r.to_dense()[:, None] + c.to_dense()[None, :])
        assert np.allclose(to_dense(kernel.run()), expected)

    def test_same_tensor_twice(self, rng):
        data = (rng.random((5, 6)) < 0.5) * rng.random((5, 6))
        B = Tensor("B", (5, 6), CSR(offChip)).from_dense(data)
        Z = Tensor("Z", (5, 6), CSR(offChip))
        i, j = index_vars("i j")
        Z[i, j] = B[i, j] * B[i, j]
        kernel = compile_stmt(Z.get_index_stmt(), "square")
        assert np.allclose(to_dense(kernel.run()), data * data)

    def test_rectangular_chain(self, rng):
        """Distinct dims along every mode catch level/mode mix-ups."""
        shape = (2, 7, 3)
        data = (rng.random(shape) < 0.4) * rng.random(shape)
        fmt = Format([compressed] * 3, None, offChip)
        B = Tensor("B", shape, fmt).from_dense(data)
        v = Tensor("v", (3,), DENSE_VECTOR(offChip)).from_dense(rng.random(3))
        A = Tensor("A", (2, 7), Format([compressed, compressed], None, offChip))
        i, j, k = index_vars("i j k")
        A[i, j] = B[i, j, k] * v[k]
        ws = scalar("ws", onChip)
        stmt = (A.get_index_stmt()
                .environment("innerPar", 4).environment("outerPar", 2)
                .precompute(B[i, j, k] * v[k], [], [], ws)
                .accelerate(k, "Spatial", "Reduction", par="innerPar"))
        kernel = compile_stmt(stmt, "rect")
        assert np.allclose(to_dense(kernel.run()),
                           evaluate_dense(A.get_assignment()))


class TestUnsupportedShapes:
    def test_three_way_scan_clear_error(self, rng):
        B = Tensor("B", (4, 4), CSR(offChip))
        C = Tensor("C", (4, 4), CSR(offChip))
        D = Tensor("D", (4, 4), CSR(offChip))
        A = Tensor("A", (4, 4), CSR(offChip))
        i, j = index_vars("i j")
        A[i, j] = B[i, j] + C[i, j] + D[i, j]
        with pytest.raises(LoweringError, match="precompute"):
            compile_stmt(A.get_index_stmt())

    def test_error_mentions_reshaping_strategy(self):
        B = Tensor("B", (4, 4), CSR(offChip))
        C = Tensor("C", (4, 4), CSR(offChip))
        D = Tensor("D", (4, 4), CSR(offChip))
        A = Tensor("A", (4, 4), CSR(offChip))
        i, j = index_vars("i j")
        A[i, j] = B[i, j] * C[i, j] * D[i, j]
        with pytest.raises(LoweringError, match="two-input"):
            compile_stmt(A.get_index_stmt())
