"""Unit tests for the index-notation expression language."""

import numpy as np
import pytest

from repro.formats import CSR, DENSE_VECTOR, offChip
from repro.ir.index_notation import (
    Access,
    Add,
    IndexVar,
    Literal,
    Mul,
    Neg,
    Sub,
    additive_terms,
    index_vars,
    to_expr,
)
from repro.tensor import Tensor, scalar


@pytest.fixture
def tensors():
    A = Tensor("A", (4, 5), CSR(offChip))
    x = Tensor("x", (5,), DENSE_VECTOR(offChip))
    y = Tensor("y", (4,), DENSE_VECTOR(offChip))
    return A, x, y


class TestIndexVars:
    def test_named_creation(self):
        i, j, k = index_vars("i j k")
        assert (i.name, j.name, k.name) == ("i", "j", "k")

    def test_comma_separated(self):
        vs = index_vars("i, j")
        assert [v.name for v in vs] == ["i", "j"]

    def test_count_creation(self):
        vs = index_vars(3)
        assert len(vs) == 3
        assert len({v.name for v in vs}) == 3

    def test_identity_not_name_equality(self):
        a, b = IndexVar("i"), IndexVar("i")
        assert a is not b
        assert a.name == b.name


class TestAccess:
    def test_call_and_getitem_syntax(self, tensors):
        A, x, y = tensors
        i, j = index_vars("i j")
        assert isinstance(A[i, j], Access)
        assert isinstance(A(i, j), Access)
        assert str(A(i, j)) == "A(i, j)"

    def test_arity_check(self, tensors):
        A, x, y = tensors
        i, j, k = index_vars("i j k")
        with pytest.raises(ValueError, match="order"):
            A[i]
        with pytest.raises(ValueError, match="order"):
            x[i, j]

    def test_repeated_var_rejected(self, tensors):
        A, _, _ = tensors
        i = IndexVar("i")
        with pytest.raises(ValueError, match="repeated"):
            A[i, i]

    def test_scalar_access(self):
        s = scalar("alpha")
        acc = s[()]
        assert acc.indices == ()
        assert str(acc) == "alpha"

    def test_mode_of(self, tensors):
        A, _, _ = tensors
        i, j = index_vars("i j")
        acc = A[i, j]
        assert acc.mode_of(i) == 0
        assert acc.mode_of(j) == 1
        assert acc.mode_of(IndexVar("z")) is None


class TestExpressions:
    def test_operators_build_nodes(self, tensors):
        A, x, _ = tensors
        i, j = index_vars("i j")
        e = A[i, j] * x[j] + 2
        assert isinstance(e, Add)
        assert isinstance(e.a, Mul)
        assert isinstance(e.b, Literal)

    def test_rmul_and_sub(self, tensors):
        _, x, _ = tensors
        j = IndexVar("j")
        e = 3 * x[j] - x[j]
        assert isinstance(e, Sub)
        assert isinstance(e.a, Mul)

    def test_neg(self, tensors):
        _, x, _ = tensors
        j = IndexVar("j")
        assert isinstance(-x[j], Neg)

    def test_index_vars_first_use_order(self, tensors):
        A, x, _ = tensors
        i, j = index_vars("i j")
        e = A[i, j] * x[j]
        assert [v.name for v in e.index_vars()] == ["i", "j"]

    def test_accesses_and_tensors(self, tensors):
        A, x, _ = tensors
        i, j = index_vars("i j")
        e = A[i, j] * x[j] + x[j]
        assert len(e.accesses()) == 3
        assert [t.name for t in e.tensors()] == ["A", "x"]

    def test_to_expr_rejects_junk(self):
        with pytest.raises(TypeError):
            to_expr("hello")


class TestStructuralOps:
    def test_equals(self, tensors):
        A, x, _ = tensors
        i, j = index_vars("i j")
        assert (A[i, j] * x[j]).equals(A[i, j] * x[j])
        assert not (A[i, j] * x[j]).equals(x[j] * A[i, j])

    def test_contains(self, tensors):
        A, x, _ = tensors
        i, j = index_vars("i j")
        e = A[i, j] * x[j] + x[j]
        assert e.contains(A[i, j] * x[j])
        assert e.contains(x[j])
        assert not e.contains(A[i, j] + x[j])

    def test_substitute(self, tensors):
        A, x, y = tensors
        i, j = index_vars("i j")
        ws = scalar("ws")
        e = (A[i, j] * x[j]).substitute(A[i, j] * x[j], ws[()])
        assert isinstance(e, Access)
        assert e.tensor is ws

    def test_substitute_nested(self, tensors):
        A, x, _ = tensors
        i, j = index_vars("i j")
        ws = scalar("ws")
        e = (A[i, j] * x[j] + x[j]).substitute(x[j], ws[()])
        # Both occurrences replaced.
        assert all(a.tensor is not x for a in e.accesses() if a.tensor.name == "x")

    def test_rename(self, tensors):
        A, x, _ = tensors
        i, j, jw = index_vars("i j jw")
        e = (A[i, j] * x[j]).rename({j: jw})
        assert [v.name for v in e.index_vars()] == ["i", "jw"]


class TestAssignment:
    def test_recorded_on_setitem(self, tensors):
        A, x, y = tensors
        i, j = index_vars("i j")
        y[i] = A[i, j] * x[j]
        asg = y.get_assignment()
        assert asg.lhs.tensor is y
        assert not asg.accumulate

    def test_plus_equals_detected(self, tensors):
        A, x, y = tensors
        i, j = index_vars("i j")
        y[i] = x.from_dense(np.zeros(5)) and A[i, j] * x[j]  # init
        y[i] = A[i, j] * x[j]
        # Python desugars += via __getitem__ then __setitem__.
        y[i] += A[i, j] * x[j]
        asg = y.get_assignment()
        assert asg.accumulate
        assert isinstance(asg.rhs, Mul)

    def test_free_and_reduction_vars(self, tensors):
        A, x, y = tensors
        i, j = index_vars("i j")
        y[i] = A[i, j] * x[j]
        asg = y.get_assignment()
        assert [v.name for v in asg.free_vars] == ["i"]
        assert [v.name for v in asg.reduction_vars] == ["j"]
        assert [v.name for v in asg.all_vars] == ["i", "j"]

    def test_no_assignment_error(self):
        t = Tensor("t", (3,), DENSE_VECTOR(offChip))
        with pytest.raises(ValueError):
            t.get_assignment()

    def test_str(self, tensors):
        A, x, y = tensors
        i, j = index_vars("i j")
        y[i] = A[i, j] * x[j]
        assert str(y.get_assignment()) == "y(i) = (A(i, j) * x(j))"


class TestAdditiveTerms:
    def test_flat_sum(self, tensors):
        A, x, y = tensors
        i, j = index_vars("i j")
        terms = additive_terms(x[j] + x[j] + x[j])
        assert len(terms) == 3
        assert all(s == 1 for s, _ in terms)

    def test_subtraction_signs(self, tensors):
        _, x, _ = tensors
        j = IndexVar("j")
        terms = additive_terms(x[j] - x[j])
        assert [s for s, _ in terms] == [1, -1]

    def test_nested_neg(self, tensors):
        _, x, _ = tensors
        j = IndexVar("j")
        terms = additive_terms(-(x[j] - x[j]))
        assert [s for s, _ in terms] == [-1, 1]

    def test_products_are_leaves(self, tensors):
        A, x, _ = tensors
        i, j = index_vars("i j")
        terms = additive_terms(A[i, j] * (x[j] + x[j]))
        assert len(terms) == 1
