"""Property tests: scheduling transformations preserve semantics.

Every legal schedule of a statement must compute the same result — the
core guarantee of the separation of algorithm and schedule (Section 5).
Random schedule compositions are applied to SpMV/SDDMM and the compiled
results compared against the unscheduled dense reference.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compile_stmt
from repro.formats import CSR, DENSE_MATRIX, DENSE_MATRIX_CM, DENSE_VECTOR, offChip, onChip
from repro.ir import index_vars
from repro.tensor import Tensor, evaluate_dense, scalar, to_dense


def make_spmv(seed: int, n=8, m=12, density=0.4):
    rng = np.random.default_rng(seed)
    mat = (rng.random((n, m)) < density) * rng.random((n, m))
    A = Tensor("A", (n, m), CSR(offChip)).from_dense(mat)
    x = Tensor("x", (m,), DENSE_VECTOR(offChip)).from_dense(rng.random(m))
    y = Tensor("y", (n,), DENSE_VECTOR(offChip))
    i, j = index_vars("i j")
    y[i] = A[i, j] * x[j]
    return y, (i, j), (A, x)


@given(
    st.integers(0, 2 ** 31 - 1),
    st.integers(1, 32),  # innerPar
    st.integers(1, 64),  # outerPar
    st.booleans(),  # accelerate the reduction?
)
@settings(max_examples=25, deadline=None)
def test_parallelization_factors_never_change_results(seed, ip, op, accel):
    y, (i, j), (A, x) = make_spmv(seed)
    ws = scalar("ws", onChip)
    stmt = (y.get_index_stmt()
            .environment("innerPar", ip).environment("outerPar", op)
            .precompute(A[i, j] * x[j], [], [], ws))
    if accel:
        stmt = stmt.accelerate(j, "Spatial", "Reduction", par="innerPar")
    kernel = compile_stmt(stmt, "spmv")
    assert np.allclose(to_dense(kernel.run()),
                       evaluate_dense(y.get_assignment()))


@given(st.integers(0, 2 ** 31 - 1), st.sampled_from([2, 4, 8]))
@settings(max_examples=15, deadline=None)
def test_split_factor_never_changes_results(seed, factor):
    # Row count divisible by every factor (tail guards are out of scope).
    y, (i, j), (A, x) = make_spmv(seed, n=8)
    io, ii = index_vars("io ii")
    ws = scalar("ws", onChip)
    stmt = (y.get_index_stmt()
            .environment("innerPar", 8).environment("outerPar", 2)
            .split_up(i, io, ii, factor)
            .precompute(A[i, j] * x[j], [], [], ws)
            .accelerate(j, "Spatial", "Reduction", par="innerPar"))
    kernel = compile_stmt(stmt, "spmv_tiled")
    assert np.allclose(to_dense(kernel.run()),
                       evaluate_dense(y.get_assignment()))


@given(st.integers(0, 2 ** 31 - 1), st.booleans())
@settings(max_examples=15, deadline=None)
def test_sddmm_schedule_equivalence(seed, use_reduce):
    rng = np.random.default_rng(seed)
    n, k = 6, 5
    b = (rng.random((n, n)) < 0.4) * rng.random((n, n))
    A = Tensor("A", (n, n), CSR(offChip))
    B = Tensor("B", (n, n), CSR(offChip)).from_dense(b)
    C = Tensor("C", (n, k), DENSE_MATRIX(offChip)).from_dense(rng.random((n, k)))
    D = Tensor("D", (k, n), DENSE_MATRIX_CM(offChip)).from_dense(rng.random((k, n)))
    i, j, kk = index_vars("i j k")
    A[i, j] = B[i, j] * C[i, kk] * D[kk, j]
    ws = scalar("ws", onChip)
    stmt = (A.get_index_stmt()
            .environment("innerPar", 16).environment("outerPar", 4)
            .precompute(B[i, j] * C[i, kk] * D[kk, j], [], [], ws))
    if use_reduce:
        stmt = stmt.accelerate(kk, "Spatial", "Reduction", par="innerPar")
    kernel = compile_stmt(stmt, "sddmm")
    assert np.allclose(to_dense(kernel.run()),
                       evaluate_dense(A.get_assignment()))


@given(st.integers(0, 2 ** 31 - 1))
@settings(max_examples=15, deadline=None)
def test_auto_schedule_equals_manual(seed):
    """The auto-scheduler's output is semantically identical to manual."""
    from repro.schedule import auto_schedule

    y, (i, j), (A, x) = make_spmv(seed)
    auto = compile_stmt(auto_schedule(y), "auto")
    assert np.allclose(to_dense(auto.run()),
                       evaluate_dense(y.get_assignment()))
