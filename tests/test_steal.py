"""Tests for ``repro.pipeline.steal``: cost table, planner, --steal.

The contract: every run records observed per-job wall times into a
persistent ``cost`` cache stage; ``plan_chunks`` turns those costs into
a deterministic, cost-balanced partition (guided: big chunks first,
``min_chunk``-job slivers at the steal tail); and a ``--steal`` dispatch
over that partition still merges byte-identically to the serial run —
falling back to uniform chunking on a cold table.
"""

from __future__ import annotations

import pytest

from repro.pipeline.batch import artifact_jobs, format_artifact, run_artifact
from repro.pipeline.dispatch import InlineTransport, dispatch
from repro.pipeline.shard import (
    MergeError,
    ShardManifest,
    ShardSpec,
    merge_manifests,
    run_shard,
)
from repro.pipeline.steal import (
    explicit_specs,
    export_costs,
    load_costs,
    plan_chunks,
    record_cost,
    record_manifest_costs,
)

TINY = 0.02

# Cache isolation comes from the shared ``fresh_cache`` fixture in
# tests/conftest.py.


def _serial_text(artifact: str, scale: float = TINY) -> str:
    return format_artifact(artifact, run_artifact(artifact, scale))


# ---------------------------------------------------------------------------
# Explicit-index shard specs
# ---------------------------------------------------------------------------


class TestExplicitShardSpec:
    def test_parse_str_round_trip(self):
        spec = ShardSpec.parse("2/5=1,4,7")
        assert spec == ShardSpec(2, 5, (1, 4, 7))
        assert str(spec) == "2/5=1,4,7"
        assert ShardSpec.parse(str(spec)) == spec

    def test_uniform_unchanged(self):
        spec = ShardSpec.parse("2/5")
        assert spec.positions is None
        assert str(spec) == "2/5"

    @pytest.mark.parametrize("text", ["1/2=", "1/2=a", "1/2=3,1",
                                      "1/2=1,1", "1/2=-1"])
    def test_rejects_bad_positions(self, text):
        with pytest.raises(ValueError):
            ShardSpec.parse(text)

    def test_select_takes_named_positions(self):
        jobs = list("abcdefgh")
        assert ShardSpec(1, 2, (0, 3, 7)).select(jobs) == ["a", "d", "h"]

    def test_select_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="stale chunk plan"):
            ShardSpec(1, 1, (9,)).select(list("abc"))

    def test_manifest_round_trips_positions(self, fresh_cache):
        manifest = run_shard("table3", TINY, ShardSpec(1, 2, (0, 2, 5)))
        loaded = ShardManifest.from_dict(manifest.to_dict())
        assert loaded.shard == ShardSpec(1, 2, (0, 2, 5))
        assert len(loaded.jobs) == 3

    def test_non_uniform_merge_byte_identical(self, fresh_cache):
        """An arbitrary non-uniform partition merges to exactly the
        serial artefact — the property the planner's chunks rely on."""
        total = len(artifact_jobs("table3", TINY))
        cut = total // 3 or 1
        parts = [tuple(range(0, cut)), tuple(range(cut, cut + 1)),
                 tuple(range(cut + 1, total))]
        parts = [p for p in parts if p]
        manifests = [run_shard("table3", TINY,
                               ShardSpec(i + 1, len(parts), positions))
                     for i, positions in enumerate(parts)]
        merged = merge_manifests(manifests)
        assert merged.text == _serial_text("table3")

    def test_merge_reports_originating_chunk(self, fresh_cache, monkeypatch):
        """A failed job inside a non-uniform chunk is attributed to the
        full chunk spec (positions included), not a bare I/N."""
        from repro.pipeline import batch

        def broken(kernel_name, scale, use_cache=None):
            raise RuntimeError("injected failure")

        monkeypatch.setattr(batch, "table3_cell", broken)
        bad = run_shard("table3", TINY, ShardSpec(2, 3, (1, 4)))
        with pytest.raises(MergeError, match=r"chunk 2/3=1,4"):
            merge_manifests([bad])

    def test_merge_reports_duplicate_chunks(self, fresh_cache):
        a = run_shard("table3", TINY, ShardSpec(1, 2, (0, 1)))
        b = run_shard("table3", TINY, ShardSpec(2, 2, (1, 2)))
        with pytest.raises(MergeError,
                           match=r"chunks 1/2=0,1 and 2/2=1,2"):
            merge_manifests([a, b])


# ---------------------------------------------------------------------------
# The cost table
# ---------------------------------------------------------------------------


class TestCostTable:
    def test_record_and_load(self, fresh_cache):
        keys = [("SpMV", "-", "loc"), ("SpMM", "-", "loc")]
        record_cost("table3", TINY, keys[0], 1.5)
        costs = load_costs("table3", TINY, keys)
        assert costs == {keys[0]: 1.5}

    def test_latest_observation_wins(self, fresh_cache):
        key = ("SpMV", "-", "loc")
        record_cost("table3", TINY, key, 5.0)
        record_cost("table3", TINY, key, 0.25)
        assert load_costs("table3", TINY, [key]) == {key: 0.25}

    def test_scales_do_not_collide(self, fresh_cache):
        key = ("SpMV", "-", "loc")
        record_cost("table3", 0.02, key, 1.0)
        record_cost("table3", 0.25, key, 9.0)
        assert load_costs("table3", 0.02, [key]) == {key: 1.0}
        assert load_costs("table3", 0.25, [key]) == {key: 9.0}

    def test_manifest_recording_skips_failures(self, fresh_cache,
                                               monkeypatch):
        from repro.pipeline import batch

        original = batch.table3_cell

        def flaky(kernel_name, scale, use_cache=None):
            if kernel_name == "SpMV":
                raise RuntimeError("injected failure")
            return original(kernel_name, scale, use_cache)

        monkeypatch.setattr(batch, "table3_cell", flaky)
        manifest = run_shard("table3", TINY, ShardSpec(1, 1))
        assert manifest.failures()
        recorded = record_manifest_costs([manifest])
        keys = [job.key for job in artifact_jobs("table3", TINY)]
        costs = load_costs("table3", TINY, keys)
        assert ("SpMV", "-", "loc") not in costs
        assert recorded == len(keys) - len(manifest.failures())

    def test_export_is_json_safe(self, fresh_cache):
        import json

        record_cost("table3", TINY, ("SpMV", "-", "loc"), 0.5)
        keys = [job.key for job in artifact_jobs("table3", TINY)]
        payload = json.loads(json.dumps(export_costs("table3", TINY, keys)))
        assert payload == {"SpMV:-:loc": 0.5}


# ---------------------------------------------------------------------------
# The planner
# ---------------------------------------------------------------------------


def _keys(n: int) -> list[tuple]:
    return [(f"k{i}", "-", "x") for i in range(n)]


class TestPlanChunks:
    def test_no_costs_means_fallback(self):
        assert plan_chunks(_keys(8), {}, slots=2) is None
        assert plan_chunks([], {}, slots=2) is None

    def test_partition_is_exact(self):
        keys = _keys(10)
        costs = {k: float(i + 1) for i, k in enumerate(keys)}
        chunks = plan_chunks(keys, costs, slots=3)
        flat = sorted(p for chunk in chunks for p in chunk)
        assert flat == list(range(10))

    def test_deterministic(self):
        """Same costs -> same chunk boundaries, run after run (the
        fault-injection determinism contract for cost-driven chunking)."""
        keys = _keys(17)
        costs = {k: ((i * 7919) % 13) / 3.0 + 0.1
                 for i, k in enumerate(keys)}
        first = plan_chunks(keys, costs, slots=3, min_chunk=2)
        for _ in range(5):
            assert plan_chunks(keys, costs, slots=3, min_chunk=2) == first

    def test_expensive_jobs_lead(self):
        """The most expensive job lands in the first chunk: nothing big
        is left to straggle at the end of the sweep."""
        keys = _keys(9)
        costs = {k: 1.0 for k in keys}
        costs[keys[5]] = 50.0
        chunks = plan_chunks(keys, costs, slots=2)
        assert 5 in chunks[0]

    def test_tail_shrinks_toward_min_chunk(self):
        """Chunk cost is non-increasing-ish: the tail chunks are the
        cheap slivers an idle worker steals."""
        keys = _keys(24)
        costs = {k: float(24 - i) for i, k in enumerate(keys)}
        chunks = plan_chunks(keys, costs, slots=2, min_chunk=1)
        chunk_costs = [sum(costs[keys[p]] for p in chunk)
                       for chunk in chunks]
        assert len(chunks) > 2
        assert chunk_costs[0] == max(chunk_costs)
        assert chunk_costs[-1] == min(chunk_costs)

    def test_min_chunk_floors_size(self):
        keys = _keys(12)
        costs = {k: 1.0 for k in keys}
        chunks = plan_chunks(keys, costs, slots=2, min_chunk=3)
        assert all(len(chunk) >= 3 for chunk in chunks[:-1])

    def test_zero_costs_degenerate(self):
        """A fully warm cache records ~0s everywhere; the planner still
        produces a valid partition (min_chunk-sized slices)."""
        keys = _keys(6)
        costs = {k: 0.0 for k in keys}
        chunks = plan_chunks(keys, costs, slots=2, min_chunk=2)
        flat = sorted(p for chunk in chunks for p in chunk)
        assert flat == list(range(6))
        assert all(len(chunk) == 2 for chunk in chunks)

    def test_unknown_jobs_priced_at_median(self):
        """One unseen job must not distort the plan: it is priced at the
        median, so it lands mid-pack rather than first or last."""
        keys = _keys(7)
        costs = {k: float(i + 1) for i, k in enumerate(keys[:-1])}
        chunks = plan_chunks(keys, costs, slots=2)
        flat = sorted(p for chunk in chunks for p in chunk)
        assert flat == list(range(7))

    def test_explicit_specs_shape(self):
        specs = explicit_specs([(0, 2), (1,), (3, 4, 5)])
        assert [str(s) for s in specs] == ["1/3=0,2", "2/3=1", "3/3=3,4,5"]


# ---------------------------------------------------------------------------
# --steal dispatches
# ---------------------------------------------------------------------------


class TestStealDispatch:
    def test_cold_table_falls_back_to_uniform(self, fresh_cache):
        events: list[str] = []
        result = dispatch("table3", TINY, InlineTransport(2), steal=True,
                          on_event=events.append)
        assert result.ok
        assert not result.steal  # fell back
        assert result.plan is None
        assert any("falling back to uniform" in e for e in events)
        assert result.merged.text == _serial_text("table3")
        # ... but the fallback sweep recorded costs for the next one.
        assert result.costs_recorded > 0

    def test_warm_table_plans_and_stays_byte_identical(self, fresh_cache):
        """The acceptance property: a --steal dispatch over a warm cost
        table produces output byte-identical to the serial run."""
        warm = dispatch("table3", TINY, InlineTransport(2))
        assert warm.ok and warm.costs_recorded > 0
        events: list[str] = []
        result = dispatch("table3", TINY, InlineTransport(2), steal=True,
                          on_event=events.append)
        assert result.ok and result.steal
        assert result.plan is not None
        assert sum(entry["jobs"] for entry in result.plan) == len(
            artifact_jobs("table3", TINY))
        assert result.merged.text == _serial_text("table3")
        assert any("cost-balanced" in e for e in events)
        assert "cost-planned" in result.summary()

    @pytest.mark.parametrize("artifact", ["table6", "format_sweep"])
    def test_paper_sweeps_steal_byte_identical(self, fresh_cache, artifact):
        """The acceptance artefacts under --steal: table6 and
        format_sweep match the serial run byte for byte."""
        warm = dispatch(artifact, TINY, InlineTransport(2))
        assert warm.ok
        result = dispatch(artifact, TINY, InlineTransport(2), steal=True)
        assert result.ok and result.steal
        assert result.merged.text == _serial_text(artifact)

    def test_steal_plan_deterministic_across_dispatches(self, fresh_cache):
        """Same recorded costs -> the same chunk plan on every dispatch
        (dispatches over a warm cache record identical ~0 replay times,
        so plans from the same table must not drift)."""
        warm = dispatch("table3", TINY, InlineTransport(2))
        assert warm.ok
        keys = [job.key for job in artifact_jobs("table3", TINY)]
        costs = load_costs("table3", TINY, keys)
        first = plan_chunks(keys, costs, slots=2)
        assert first is not None
        assert plan_chunks(keys, costs, slots=2) == first

    def test_steal_resume_round_trip(self, fresh_cache, tmp_path):
        """A --steal dispatch resumed into the same state dir reuses its
        planned chunks when the plan is unchanged."""
        warm = dispatch("table3", TINY, InlineTransport(2))
        assert warm.ok
        state = tmp_path / "state"
        first = dispatch("table3", TINY, InlineTransport(2), steal=True,
                         state_dir=state, resume=True)
        assert first.ok and first.steal
        again = dispatch("table3", TINY, InlineTransport(2), steal=True,
                         state_dir=state, resume=True)
        assert again.ok
        assert again.merged.text == first.merged.text

    def test_resumed_chunks_do_not_rerecord_stale_costs(self, fresh_cache,
                                                        tmp_path):
        """Resumed manifests carry a previous run's wall times; a fully
        resumed dispatch must not stamp them over fresher cost-table
        observations ("latest wins" means latest *execution*)."""
        state = tmp_path / "state"
        first = dispatch("table3", TINY, InlineTransport(1),
                         state_dir=state, resume=True)
        assert first.ok and first.costs_recorded > 0
        key = ("SpMV", "-", "loc")
        record_cost("table3", TINY, key, 123.0)  # a fresher observation
        again = dispatch("table3", TINY, InlineTransport(1),
                         state_dir=state, resume=True)
        assert again.ok
        assert again.resumed_chunks == again.chunks  # nothing executed
        assert again.costs_recorded == 0
        assert load_costs("table3", TINY, [key]) == {key: 123.0}

    def test_steal_cli_round_trip(self, fresh_cache, capsys):
        from repro.__main__ import main

        assert main(["dispatch", "table3", "--workers", "inline:2",
                     "--scale", "0.02", "--quiet"]) == 0
        capsys.readouterr()
        assert main(["dispatch", "table3", "--workers", "inline:2",
                     "--scale", "0.02", "--quiet", "--steal",
                     "--min-chunk", "1"]) == 0
        assert capsys.readouterr().out == _serial_text("table3") + "\n"
