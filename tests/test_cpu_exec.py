"""Tests for the executable CPU backend (CIN interpreter over storage).

Three-way differential testing: the CPU executor, the Spatial interpreter,
and the dense reference must agree on every kernel; the executor's
per-loop visit counts must equal the workload statistics that drive the
Capstan simulator.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.cpu_exec import CpuExecutor, execute_cpu
from repro.capstan import compute_stats
from repro.core import compile_stmt
from repro.formats import CSR, offChip
from repro.ir import index_vars
from repro.kernels import KERNEL_ORDER
from repro.tensor import Tensor, evaluate_dense, to_dense
from tests.helpers_kernels import build_small_kernel_stmt


@pytest.mark.parametrize("name", KERNEL_ORDER)
def test_matches_dense_reference(name):
    stmt, out, _ = build_small_kernel_stmt(name)
    result = execute_cpu(stmt)
    reference = np.atleast_1d(evaluate_dense(out.get_assignment()))
    assert np.allclose(result.reshape(reference.shape), reference)


@pytest.mark.parametrize("name", KERNEL_ORDER)
def test_matches_spatial_interpreter(name):
    """Differential: CPU executor vs Spatial interpreter, same statement."""
    stmt, out, _ = build_small_kernel_stmt(name, seed=9, density=0.35)
    cpu = execute_cpu(stmt)
    spatial = to_dense(compile_stmt(stmt, name.lower()).run())
    assert np.allclose(cpu.reshape(np.atleast_1d(spatial).shape),
                       np.atleast_1d(spatial))


@pytest.mark.parametrize("name", ["SpMV", "InnerProd", "Plus2", "Plus3", "TTV"])
def test_visit_counts_match_stats(name):
    """The executor's loop visits equal the simulator's workload stats —
    two fully independent derivations of the same iteration spaces."""
    stmt, _, _ = build_small_kernel_stmt(name)
    ex = CpuExecutor(stmt)
    ex.run()
    stats = compute_stats(compile_stmt(stmt, name.lower()))
    for loop in stats.loops:
        assert ex.visits[loop.ivar] == loop.iters, loop.ivar


class TestNaryUnion:
    """TACO's multi-way merge path: no two-operand scanner restriction."""

    def _three(self, rng, density=0.3):
        def sp(name):
            m = (rng.random((6, 8)) < density) * rng.random((6, 8))
            return Tensor(name, (6, 8), CSR(offChip)).from_dense(m)

        return sp("B"), sp("C"), sp("D")

    def test_unscheduled_plus3(self, rng):
        B, C, D = self._three(rng)
        A = Tensor("A", (6, 8), CSR(offChip))
        i, j = index_vars("i j")
        A[i, j] = B[i, j] + C[i, j] + D[i, j]
        result = execute_cpu(A.get_index_stmt())
        assert np.allclose(result, B.to_dense() + C.to_dense() + D.to_dense())

    def test_unscheduled_plus3_rejected_by_capstan(self, rng):
        """The same statement cannot lower to Capstan (two-input scanners),
        which is exactly why the paper schedules Plus3 as iterated
        two-input additions."""
        from repro.core.coiteration import LoweringError

        B, C, D = self._three(rng)
        A = Tensor("A", (6, 8), CSR(offChip))
        i, j = index_vars("i j")
        A[i, j] = B[i, j] + C[i, j] + D[i, j]
        with pytest.raises(LoweringError, match="two-input"):
            compile_stmt(A.get_index_stmt())

    def test_mixed_product_union(self, rng):
        B, C, D = self._three(rng)
        A = Tensor("A", (6, 8), CSR(offChip))
        i, j = index_vars("i j")
        A[i, j] = B[i, j] * C[i, j] + D[i, j]
        result = execute_cpu(A.get_index_stmt())
        expected = B.to_dense() * C.to_dense() + D.to_dense()
        assert np.allclose(result, expected)

    def test_visit_count_is_merge_union(self, rng):
        B, C, D = self._three(rng)
        A = Tensor("A", (6, 8), CSR(offChip))
        i, j = index_vars("i j")
        A[i, j] = B[i, j] + C[i, j] + D[i, j]
        ex = CpuExecutor(A.get_index_stmt())
        ex.run()
        either = (B.to_dense() != 0) | (C.to_dense() != 0) | (D.to_dense() != 0)
        assert ex.visits["j"] == int(either.sum())


@given(st.integers(0, 2 ** 31 - 1), st.floats(0.0, 1.0))
@settings(max_examples=20, deadline=None)
def test_three_way_agreement_spmv(seed, density):
    """Property: dense reference == CPU executor == Spatial interpreter."""
    stmt, out, _ = build_small_kernel_stmt("SpMV", seed=seed, density=density)
    reference = evaluate_dense(out.get_assignment())
    cpu = execute_cpu(stmt)
    spatial = to_dense(compile_stmt(stmt, "spmv").run())
    assert np.allclose(cpu, reference)
    assert np.allclose(spatial, reference)


@given(st.integers(0, 2 ** 31 - 1))
@settings(max_examples=15, deadline=None)
def test_three_way_agreement_plus2(seed):
    stmt, out, _ = build_small_kernel_stmt("Plus2", seed=seed, density=0.4)
    reference = evaluate_dense(out.get_assignment())
    assert np.allclose(execute_cpu(stmt), reference)
    assert np.allclose(to_dense(compile_stmt(stmt, "p2").run()), reference)
