"""Tests for ``repro.pipeline.shard``: determinism, manifests, merging.

The contract under test is the Section 8 sweep-distribution guarantee:
any partition of an artefact's job list into shards, run in any order
with any worker count, merges back into output byte-identical to the
serial harness — and a merge over an incompatible or incomplete shard
set is refused loudly rather than silently wrong.
"""

from __future__ import annotations

import json

import pytest

from repro.pipeline.batch import artifact_jobs
from repro.pipeline.cache import compiler_version
from repro.pipeline.shard import (
    ManifestError,
    MergeError,
    ShardManifest,
    ShardSpec,
    decode_result,
    encode_result,
    merge_manifests,
    run_shard,
)

TINY = 0.02

# Cache isolation comes from the shared ``fresh_cache`` fixture in
# tests/conftest.py.


def _strip_seconds(manifest: ShardManifest) -> list[dict]:
    """Job entries without the wall-time field (the only nondeterminism)."""
    return [{k: v for k, v in entry.items() if k != "seconds"}
            for entry in manifest.jobs]


# ---------------------------------------------------------------------------
# Shard specification and determinism
# ---------------------------------------------------------------------------


class TestShardSpec:
    def test_parse(self):
        assert ShardSpec.parse("2/8") == ShardSpec(2, 8)
        assert str(ShardSpec.parse("1/1")) == "1/1"

    @pytest.mark.parametrize("text", ["", "2", "0/3", "4/3", "a/b", "1/0",
                                      "-1/3", "1/3/5"])
    def test_parse_rejects(self, text):
        with pytest.raises(ValueError):
            ShardSpec.parse(text)

    def test_union_of_shards_is_full_job_list(self):
        jobs = artifact_jobs("table6", TINY)
        for count in (1, 2, 3, 5, len(jobs), len(jobs) + 3):
            picked = [job.key
                      for i in range(1, count + 1)
                      for job in ShardSpec(i, count).select(jobs)]
            assert sorted(picked) == sorted(j.key for j in jobs)

    def test_shards_are_disjoint(self):
        jobs = artifact_jobs("table6", TINY)
        seen: set = set()
        for i in range(1, 4):
            keys = {job.key for job in ShardSpec(i, 3).select(jobs)}
            assert not keys & seen
            seen |= keys

    def test_selection_independent_of_worker_count(self):
        # Sharding slices the job list *before* execution, so the slice
        # cannot depend on --jobs; assert it from the selection API.
        jobs = artifact_jobs("table6", TINY)
        assert ([j.key for j in ShardSpec(2, 3).select(jobs)]
                == [j.key for j in ShardSpec(2, 3).select(list(jobs))])

    def test_round_robin_balances(self):
        jobs = artifact_jobs("table6", TINY)
        sizes = [len(ShardSpec(i, 3).select(jobs)) for i in range(1, 4)]
        assert max(sizes) - min(sizes) <= 1


# ---------------------------------------------------------------------------
# Result codecs
# ---------------------------------------------------------------------------


class TestCodecs:
    def test_table6_round_trip(self):
        from repro.eval.harness import PlatformTimes

        times = PlatformTimes("SpMV", "bcsstk30",
                              {"Capstan (HBM2E)": 0.1, "V100 GPU": 0.3})
        wire = json.loads(json.dumps(encode_result("table6", times)))
        assert decode_result("table6", wire) == times

    def test_table5_round_trip(self):
        from repro.capstan.resources import ResourceEstimate

        est = ResourceEstimate("TTV", 4, 100, 50, 20, 3)
        wire = json.loads(json.dumps(encode_result("table5", est)))
        assert decode_result("table5", wire) == est

    def test_figure12_round_trip_restores_int_keys(self):
        series = {20: 1.0, 2000: 17.25}
        wire = json.loads(json.dumps(encode_result("figure12", series)))
        assert decode_result("figure12", wire) == series

    def test_floats_survive_json_exactly(self):
        # The byte-identical merge guarantee rests on this property.
        from repro.eval.harness import PlatformTimes

        ugly = 0.1 + 0.2  # 0.30000000000000004
        times = PlatformTimes("k", "d", {"p": ugly, "q": 1e-17})
        wire = json.loads(json.dumps(encode_result("table6", times)))
        decoded = decode_result("table6", wire)
        assert decoded.seconds["p"] == ugly
        assert decoded.seconds["q"] == 1e-17

    def test_unknown_artifact_rejected(self):
        with pytest.raises(KeyError):
            encode_result("table7", {})
        with pytest.raises(KeyError):
            decode_result("table7", {})


# ---------------------------------------------------------------------------
# Manifests
# ---------------------------------------------------------------------------


class TestManifest:
    def test_round_trip(self, fresh_cache, tmp_path):
        manifest = run_shard("table3", TINY, ShardSpec(1, 2))
        path = manifest.save(tmp_path / "shard1.json")
        loaded = ShardManifest.load(path)
        assert loaded.artifact == "table3"
        assert loaded.scale == TINY
        assert loaded.shard == ShardSpec(1, 2)
        assert loaded.compiler == compiler_version()
        assert loaded.total_jobs == len(artifact_jobs("table3", TINY))
        assert _strip_seconds(loaded) == _strip_seconds(manifest)

    def test_stable_under_worker_count(self, fresh_cache, tmp_path):
        serial = run_shard("table3", TINY, ShardSpec(1, 2), jobs=1,
                           use_cache=False)
        parallel = run_shard("table3", TINY, ShardSpec(1, 2), jobs=4,
                             use_cache=False)
        assert _strip_seconds(serial) == _strip_seconds(parallel)

    def test_load_rejects_non_manifest(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ManifestError, match="not a repro-shard-manifest"):
            ShardManifest.load(path)

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("{nope")
        with pytest.raises(ManifestError, match="cannot read"):
            ShardManifest.load(path)

    def test_load_rejects_wrong_version(self, fresh_cache, tmp_path):
        data = run_shard("table3", TINY, ShardSpec(1, 1)).to_dict()
        data["version"] = 99
        with pytest.raises(ManifestError, match="unsupported manifest version"):
            ShardManifest.from_dict(data)

    def test_load_rejects_missing_fields(self):
        with pytest.raises(ManifestError, match="missing field"):
            ShardManifest.from_dict(
                {"format": "repro-shard-manifest", "version": 1}
            )

    def test_load_rejects_unknown_artifact(self, fresh_cache):
        data = run_shard("table3", TINY, ShardSpec(1, 1)).to_dict()
        data["artifact"] = "table7"
        with pytest.raises(ManifestError, match="unknown artefact"):
            ShardManifest.from_dict(data)

    def test_captures_failures_instead_of_raising(self, fresh_cache,
                                                  monkeypatch):
        from repro.pipeline import batch

        def broken(kernel_name, scale, use_cache=None):
            raise RuntimeError("injected failure")

        monkeypatch.setattr(batch, "table3_cell", broken)
        manifest = run_shard("table3", TINY, ShardSpec(1, 1))
        assert len(manifest.failures()) == len(manifest.jobs)
        assert "injected failure" in manifest.failures()[0]["error"]


# ---------------------------------------------------------------------------
# Merging
# ---------------------------------------------------------------------------


def _shards(artifact: str, count: int, scale: float = TINY):
    return [run_shard(artifact, scale, ShardSpec(i, count))
            for i in range(1, count + 1)]


class TestMerge:
    @pytest.mark.parametrize("artifact,count", [
        ("table6", 3), ("table3", 2), ("table5", 4), ("figure12", 2),
    ])
    def test_merge_equals_serial(self, fresh_cache, artifact, count):
        from repro.pipeline.batch import format_artifact, run_artifact

        merged = merge_manifests(_shards(artifact, count))
        serial = run_artifact(artifact, TINY)
        assert merged.data == serial
        assert merged.text == format_artifact(artifact, serial)

    def test_merge_survives_json_round_trip(self, fresh_cache, tmp_path):
        from repro.eval.harness import format_table6, table6

        paths = [m.save(tmp_path / f"s{m.shard.index}.json")
                 for m in _shards("table6", 3)]
        merged = merge_manifests([ShardManifest.load(p) for p in paths])
        assert merged.text == format_table6(table6(TINY))

    def test_merge_order_independent(self, fresh_cache):
        shards = _shards("table3", 3)
        assert (merge_manifests(shards[::-1]).text
                == merge_manifests(shards).text)

    def test_rejects_empty(self):
        with pytest.raises(MergeError, match="no manifests"):
            merge_manifests([])

    def test_rejects_mismatched_scale(self, fresh_cache):
        a = run_shard("table3", TINY, ShardSpec(1, 2))
        b = run_shard("table3", 0.03, ShardSpec(2, 2))
        with pytest.raises(MergeError, match="disagree on scale"):
            merge_manifests([a, b])

    def test_rejects_mismatched_artifact(self, fresh_cache):
        a = run_shard("table3", TINY, ShardSpec(1, 2))
        b = run_shard("table5", TINY, ShardSpec(2, 2))
        with pytest.raises(MergeError, match="disagree on artefact"):
            merge_manifests([a, b])

    def test_rejects_mismatched_compiler_hash(self, fresh_cache):
        a, b = _shards("table3", 2)
        b.compiler = "0" * 16
        with pytest.raises(MergeError, match="disagree on compiler hash"):
            merge_manifests([a, b])

    def test_rejects_stale_compiler(self, fresh_cache):
        (a,) = _shards("table3", 1)
        a.compiler = "0" * 16
        with pytest.raises(MergeError, match="this checkout"):
            merge_manifests([a])
        # ... unless explicitly allowed (same-source reruns elsewhere).
        merged = merge_manifests([a], require_current_compiler=False)
        assert "Table 3" in merged.text

    def test_rejects_missing_jobs(self, fresh_cache):
        shards = _shards("table6", 3)
        with pytest.raises(MergeError, match="missing job"):
            merge_manifests(shards[:2])

    def test_rejects_duplicate_shard(self, fresh_cache):
        shards = _shards("table3", 2)
        with pytest.raises(MergeError, match="duplicate shard"):
            merge_manifests([shards[0], shards[0], shards[1]])

    def test_rejects_duplicate_jobs(self, fresh_cache):
        a, b = _shards("table3", 2)
        b.jobs.append(dict(a.jobs[0]))  # b smuggles in one of a's jobs
        with pytest.raises(MergeError, match="duplicate job"):
            merge_manifests([a, b])

    def test_rejects_malformed_payload(self, fresh_cache):
        a, b = _shards("table6", 2)
        b.jobs[0]["value"] = {"wrong": "shape"}
        with pytest.raises(MergeError, match="malformed result payload"):
            merge_manifests([a, b])

    def test_rejects_unexpected_jobs(self, fresh_cache):
        a, b = _shards("table3", 2)
        rogue = dict(a.jobs[0])
        rogue["key"] = ["NotAKernel", "-", "loc"]
        b.jobs.append(rogue)
        with pytest.raises(MergeError, match="unexpected job"):
            merge_manifests([a, b])

    def test_rejects_failed_jobs(self, fresh_cache, monkeypatch):
        from repro.pipeline import batch

        good = run_shard("table3", TINY, ShardSpec(1, 2))

        def broken(kernel_name, scale, use_cache=None):
            raise RuntimeError("injected failure")

        monkeypatch.setattr(batch, "table3_cell", broken)
        bad = run_shard("table3", TINY, ShardSpec(2, 2))
        with pytest.raises(MergeError, match="failed job"):
            merge_manifests([good, bad])


# ---------------------------------------------------------------------------
# CLI round trip: batch --shard ... | merge == tables
# ---------------------------------------------------------------------------


class TestCli:
    def test_shard_merge_byte_identical_to_tables(self, fresh_cache,
                                                  tmp_path, capsys):
        from repro.__main__ import main

        paths = []
        for i in (1, 2, 3):
            out = tmp_path / f"shard{i}.json"
            assert main(["batch", "table6", "--scale", "0.02",
                         "--shard", f"{i}/3", "--out", str(out)]) == 0
            paths.append(out)
        capsys.readouterr()

        assert main(["tables", "table6", "--scale", "0.02"]) == 0
        serial = capsys.readouterr().out
        assert main(["merge", *map(str, paths)]) == 0
        merged = capsys.readouterr().out
        assert merged == serial

    def test_shard_list(self, capsys):
        from repro.__main__ import main

        assert main(["batch", "table6", "--list", "--scale", "0.02",
                     "--shard", "1/3"]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        assert len(lines) == len(ShardSpec(1, 3).select(
            artifact_jobs("table6", TINY)))

    def test_shard_rejects_multiple_artifacts(self, capsys):
        from repro.__main__ import main

        assert main(["batch", "table3", "table5", "--shard", "1/2"]) == 2

    def test_shard_rejects_bad_spec(self, capsys):
        from repro.__main__ import main

        assert main(["batch", "table3", "--shard", "9/3"]) == 2

    def test_merge_reports_errors(self, fresh_cache, tmp_path, capsys):
        from repro.__main__ import main

        m = run_shard("table3", TINY, ShardSpec(1, 2))
        path = m.save(tmp_path / "only.json")
        assert main(["merge", str(path)]) == 1
        assert "missing job" in capsys.readouterr().err

    def test_merge_writes_out_file(self, fresh_cache, tmp_path, capsys):
        from repro.__main__ import main

        paths = [m.save(tmp_path / f"s{m.shard.index}.json")
                 for m in _shards("table3", 2)]
        out = tmp_path / "merged.txt"
        assert main(["merge", *map(str, paths), "--out", str(out)]) == 0
        assert out.read_text() == capsys.readouterr().out
