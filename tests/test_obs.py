"""The observability layer: span tracing, the metrics registry, and
their surfaces.

The contracts under test are the tentpole guarantees of ``repro.obs``:

* **zero overhead when off** — with ``REPRO_TRACE_DIR`` unset, every
  ``span()`` call returns the same module-level no-op singleton and no
  file is ever created;
* **schema round-trip** — records written by the tracer parse back
  through :func:`repro.obs.timeline.load_trace_dir` with parent links,
  attrs, and the schema version intact, and export to valid Chrome
  trace JSON;
* **byte transparency** — artefact bytes are identical with tracing on
  and off, including across a ``queue:DIR`` sweep with a killed worker
  (whose expired lease must appear in the merged timeline);
* **serve spans** — N coalesced requests reference exactly one compute
  span; ``/metrics`` renders Prometheus text; ``/stats`` counts
  responses by status code;
* **the computed/cached split** — a warm dispatch reports
  ``jobs_cached``, not ``jobs_computed``.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro import obs
from repro.obs import metrics as metrics_mod
from repro.obs import trace as trace_mod
from repro.obs.timeline import load_trace_dir, render_summary, to_chrome

TINY = 0.02


# ---------------------------------------------------------------------------
# Tracer: off mode
# ---------------------------------------------------------------------------


class TestTracingOff:
    def test_noop_singleton_identity(self, monkeypatch, tmp_path):
        monkeypatch.delenv(obs.TRACE_ENV, raising=False)
        assert not obs.tracing_enabled()
        assert obs.trace_dir() is None
        assert obs.trace_env_knobs() == {}
        first = obs.span("lower", kernel="SpMV")
        second = obs.span("codegen")
        assert first is second  # the module singleton: no per-call alloc
        assert first is trace_mod._NULL_SPAN
        assert first.id is None
        with first as sp:
            sp.set(anything="goes")
        obs.event("lease", worker="w1")  # also a no-op
        assert list(tmp_path.iterdir()) == []

    def test_exceptions_propagate_through_null_span(self, monkeypatch):
        monkeypatch.delenv(obs.TRACE_ENV, raising=False)
        with pytest.raises(RuntimeError):
            with obs.span("boom"):
                raise RuntimeError("x")


# ---------------------------------------------------------------------------
# Tracer: schema round-trip
# ---------------------------------------------------------------------------


@pytest.fixture
def trace_dir_env(monkeypatch, tmp_path):
    root = tmp_path / "traces"
    monkeypatch.setenv(obs.TRACE_ENV, str(root))
    return root


class TestSchemaRoundTrip:
    def test_nested_spans_and_events(self, trace_dir_env):
        assert obs.tracing_enabled()
        assert obs.trace_env_knobs() == {obs.TRACE_ENV: str(trace_dir_env)}
        with obs.span("outer", artifact="table3") as outer:
            obs.event("claim", task="chunk-1")
            with obs.span("inner", kernel="SpMV") as inner:
                inner.set(loops=4)
        data = load_trace_dir(trace_dir_env)
        assert data.problems() == []
        assert data.truncated_tails() == 0
        assert len(data.spans) == 2 and len(data.events) == 1
        by_name = {r["name"]: r for r in data.records}
        for rec in data.records:
            assert rec["v"] == trace_mod.SCHEMA
            assert rec["k"] in ("span", "event")
            assert isinstance(rec["ts"], float)
            assert rec["proc"] and rec["id"].startswith(rec["proc"])
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["claim"]["parent"] == by_name["outer"]["id"]
        assert by_name["inner"]["attrs"] == {"kernel": "SpMV", "loops": 4}
        assert by_name["inner"]["dur"] <= by_name["outer"]["dur"]

    def test_exception_stamps_error_attr(self, trace_dir_env):
        with pytest.raises(ValueError):
            with obs.span("lower", kernel="SpMV"):
                raise ValueError("bad schedule")
        data = load_trace_dir(trace_dir_env)
        assert data.spans[0]["attrs"]["error"] == "ValueError"

    def test_unnested_span_has_no_parent(self, trace_dir_env):
        with obs.span("outer"):
            with obs.span("detached", _nest=False, _track="req-1"):
                pass
        data = load_trace_dir(trace_dir_env)
        detached = next(r for r in data.spans if r["name"] == "detached")
        assert "parent" not in detached
        assert detached["track"] == "req-1"

    def test_chrome_export_shape(self, trace_dir_env):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        obs.event("claim")
        chrome = to_chrome(load_trace_dir(trace_dir_env))
        events = chrome["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"X", "i", "M"} <= phases
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 2
        for e in xs:
            assert e["ts"] >= 0 and e["dur"] >= 0
        json.dumps(chrome)  # must serialize cleanly

    def test_truncated_tail_tolerated_interior_flagged(self, trace_dir_env):
        with obs.span("a"):
            pass
        path = next(trace_dir_env.glob("trace-*.jsonl"))
        # A killed process leaves a partial trailing line: tolerated.
        path.write_text(path.read_text() + '{"k": "span", "na')
        data = load_trace_dir(trace_dir_env)
        assert data.truncated_tails() == 1
        assert data.problems() == []
        # The same fragment *inside* the file is corruption: flagged.
        path.write_text('{"k": "span", "na\n' + path.read_text())
        data = load_trace_dir(trace_dir_env)
        assert any("unparseable" in p for p in data.problems())

    def test_orphaned_span_reported(self, trace_dir_env):
        with obs.span("child"):
            pass
        path = next(trace_dir_env.glob("trace-*.jsonl"))
        rec = json.loads(path.read_text())
        rec["parent"] = "ghost-1:99"  # enclosing span never landed
        path.write_text(json.dumps(rec) + "\n")
        data = load_trace_dir(trace_dir_env)
        assert len(data.orphans) == 1
        assert any("missing parent" in p for p in data.problems())

    def test_summary_renders_all_sections(self, trace_dir_env):
        with obs.span("outer", kernel="SpMV"):
            with obs.span("stage:compile", hit=False):
                pass
            with obs.span("stage:compile", hit=True):
                pass
        text = render_summary(load_trace_dir(trace_dir_env))
        assert "== per-span totals ==" in text
        assert "== cache hit ratio (staged lookups) ==" in text
        assert "== worker utilization ==" in text
        assert "== critical path ==" in text
        assert "compile" in text and "50.0%" in text

    def test_non_serializable_attr_degrades_gracefully(self, trace_dir_env):
        with obs.span("odd", payload=object()):
            pass
        data = load_trace_dir(trace_dir_env)
        assert data.problems() == []
        assert data.spans[0]["attrs"]["payload"].startswith("<object")


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_and_labels(self):
        reg = metrics_mod.MetricsRegistry()
        c = reg.counter("repro_test_total", "help text", ("path", "status"))
        c.inc(path="/evaluate", status="200")
        c.inc(2, path="/evaluate", status="200")
        c.inc(path="/stats", status="200")
        assert c.value(path="/evaluate", status="200") == 3
        text = reg.render()
        assert "# HELP repro_test_total help text" in text
        assert "# TYPE repro_test_total counter" in text
        assert 'repro_test_total{path="/evaluate",status="200"} 3' in text
        assert text.endswith("\n")

    def test_histogram_buckets_cumulative(self):
        reg = metrics_mod.MetricsRegistry()
        h = reg.histogram("repro_lat_seconds", "latency")
        for v in (0.001, 0.002, 0.004, 10.0):
            h.observe(v)
        text = reg.render()
        assert 'repro_lat_seconds_bucket{le="+Inf"} 4' in text
        assert "repro_lat_seconds_count 4" in text
        snap = reg.snapshot()
        assert snap["histograms"]["repro_lat_seconds"]["count"] == 4

    def test_kind_mismatch_rejected(self):
        reg = metrics_mod.MetricsRegistry()
        reg.counter("repro_x_total")
        with pytest.raises(ValueError):
            reg.gauge("repro_x_total")

    def test_bad_name_rejected(self):
        reg = metrics_mod.MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("1bad-name")

    def test_label_escaping(self):
        reg = metrics_mod.MetricsRegistry()
        c = reg.counter("repro_esc_total", "", ("path",))
        c.inc(path='we"ird\\pa\nth')
        assert '\\"' in reg.render() and "\\n" in reg.render()


# ---------------------------------------------------------------------------
# The computed/cached split
# ---------------------------------------------------------------------------


class TestComputedSplit:
    def test_warm_dispatch_reports_cached_not_computed(self, fresh_cache):
        from repro.pipeline.dispatch import (
            InlineTransport,
            dispatch,
            dispatch_summary_payload,
        )

        cold = dispatch("table3", TINY, InlineTransport(2))
        jobs = sum(len(m.jobs) for m in cold.manifests)
        assert cold.ok
        assert cold.jobs_computed == jobs
        assert cold.jobs_cached == 0
        warm = dispatch("table3", TINY, InlineTransport(2))
        assert warm.ok
        assert warm.merged.text == cold.merged.text
        assert warm.jobs_computed == 0
        assert warm.jobs_cached == jobs
        assert f"(0 computed, {jobs} cached)" in warm.summary()
        payload = dispatch_summary_payload(warm)
        assert payload["jobs_computed"] == 0
        assert payload["jobs_cached"] == jobs


# ---------------------------------------------------------------------------
# Dispatch tracing: killed worker, merged timeline, byte identity
# ---------------------------------------------------------------------------


class TestDispatchTracing:
    def test_killed_worker_timeline_and_byte_identity(
            self, fresh_cache, trace_dir_env, tmp_path, monkeypatch):
        """A queue sweep whose first lease is stolen by a vanishing
        worker: the merged timeline must show the expired lease and the
        traced artefact must stay byte-identical to an untraced serial
        run."""
        import os

        from repro.pipeline.batch import format_artifact, run_artifact
        from repro.pipeline.dispatch import QueueTransport, dispatch
        from repro.pipeline.fsqueue import worker_loop

        transport = QueueTransport(tmp_path / "pool")

        def saboteur():
            # Claim the first task, then vanish without heartbeating —
            # a killed worker, from the dispatcher's point of view.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if transport.queue_dir.exists():
                    for task in sorted(
                            transport.queue_dir.glob("chunk-*.json")):
                        try:
                            os.replace(task, transport.claimed_dir /
                                       (task.name + ".saboteur"))
                            return
                        except OSError:
                            pass
                time.sleep(0.01)

        threading.Thread(target=saboteur, daemon=True).start()
        stop = {"exit": False}
        worker = threading.Thread(
            target=worker_loop,
            kwargs=dict(root=transport.root, poll=0.02,
                        should_exit=lambda: stop["exit"]),
            daemon=True)
        worker.start()
        events: list[str] = []
        result = dispatch("table3", TINY, transport, lease_timeout=1.0,
                          retries=8, on_event=events.append)
        worker.join(10)
        assert result.ok
        assert any("lease expired" in e for e in events)

        data = load_trace_dir(trace_dir_env)
        expired = [r for r in data.events if r["name"] == "lease.expired"]
        assert expired, "expired lease missing from the merged timeline"
        names = {r["name"] for r in data.spans}
        assert {"dispatch", "chunk", "job", "task"} <= names
        claims = [r for r in data.events if r["name"] == "claim"]
        assert claims and all(r["attrs"]["worker"] for r in claims)
        # Spans land in files, never in the artefact: byte identity
        # against an untraced serial rendering.
        monkeypatch.delenv(obs.TRACE_ENV)
        serial = format_artifact("table3", run_artifact("table3", TINY))
        assert result.merged.text == serial
        assert render_summary(data)  # and the report renders

    def test_dispatch_span_carries_job_split(self, fresh_cache,
                                             trace_dir_env):
        from repro.pipeline.dispatch import InlineTransport, dispatch

        result = dispatch("table3", TINY, InlineTransport(1))
        assert result.ok
        data = load_trace_dir(trace_dir_env)
        root = next(r for r in data.spans if r["name"] == "dispatch")
        assert root["attrs"]["jobs_computed"] == result.jobs_computed
        assert root["attrs"]["jobs_cached"] == result.jobs_cached
        # Chunk spans nest under the dispatch span via the job split.
        stage_hits = [r["attrs"]["hit"] for r in data.spans
                      if r["name"].startswith("stage:")]
        assert stage_hits, "memoized stages recorded no spans"


# ---------------------------------------------------------------------------
# Serve: request/compute spans, /metrics, /stats response counters
# ---------------------------------------------------------------------------


def _get(port: int, path: str):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, resp.read(), dict(resp.getheaders())
    finally:
        conn.close()


def _post(port: int, path: str, body: dict, timeout: float = 60.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("POST", path, body=json.dumps(body))
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


class TestServeObservability:
    def test_coalesced_requests_share_one_compute_span(self, fresh_cache,
                                                       trace_dir_env):
        import repro.api as api
        from repro.service.server import ServeConfig, ServiceThread

        release = threading.Event()

        def slow_execute(request, use_cache):
            release.wait(10)  # hold every joiner in the coalesce window
            return api.CompileResult(request=request.resolved(),
                                     seconds={api.BASELINE_PLATFORM: 1.0})

        clients = 4
        config = ServeConfig(port=0, pool="inline:2", execute=slow_execute)
        with ServiceThread(config) as svc:
            results: list[int] = []
            lock = threading.Lock()

            def hit():
                status, _body = _post(
                    svc.port, "/evaluate", {"kernel": "SpMV", "scale": TINY})
                with lock:
                    results.append(status)

            threads = [threading.Thread(target=hit)
                       for _ in range(clients)]
            for t in threads:
                t.start()
            # Hold the compute until every client is admitted, so all of
            # them land inside the coalescing window deterministically.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                serve = json.loads(_get(svc.port, "/stats")[1])["serve"]
                if serve["requests"] >= clients:
                    break
                time.sleep(0.02)
            release.set()
            for t in threads:
                t.join(30)
            assert results == [200] * clients

        data = load_trace_dir(trace_dir_env)
        computes = [r for r in data.spans if r["name"] == "compute"]
        assert len(computes) == 1, "coalesced burst must compute once"
        requests = [r for r in data.spans if r["name"] == "request"]
        assert len(requests) == clients
        joined = [r for r in requests
                  if r["attrs"]["outcome"] == "joined"]
        assert joined, "no request joined the in-flight compute"
        for rec in joined:
            assert rec["attrs"]["compute_span"] == computes[0]["id"]
        launcher = [r for r in requests
                    if r["attrs"]["outcome"] == "computed"]
        assert len(launcher) == 1
        assert launcher[0]["attrs"]["compute_span"] == computes[0]["id"]

    def test_metrics_endpoint_prometheus_text(self, fresh_cache):
        from repro.service.server import ServeConfig, ServiceThread

        with ServiceThread(ServeConfig(port=0, pool="inline:1")) as svc:
            _post(svc.port, "/evaluate", {"kernel": "SpMV", "scale": TINY})
            status, body, headers = _get(svc.port, "/metrics")
            assert status == 200
            assert headers["Content-Type"].startswith("text/plain")
            text = body.decode()
            assert "# TYPE repro_serve_requests_total counter" in text
            assert "# TYPE repro_request_seconds histogram" in text
            samples = {}
            for line in text.splitlines():
                if line and not line.startswith("#"):
                    series, _, value = line.rpartition(" ")
                    samples[series] = float(value)  # parseable exposition
            assert samples["repro_serve_requests_total"] >= 1
            assert samples["repro_request_seconds_count"] >= 1
            assert any(s.startswith("repro_cache_stage_total")
                       for s in samples)

    def test_stats_counts_responses_by_status(self, fresh_cache):
        from repro.service.server import ServeConfig, ServiceThread

        with ServiceThread(ServeConfig(port=0, pool="inline:1")) as svc:
            _post(svc.port, "/evaluate", {"kernel": "SpMV", "scale": TINY})
            _get(svc.port, "/nowhere")
            status, body, _headers = _get(svc.port, "/stats")
            assert status == 200
            serve = json.loads(body)["serve"]
            assert serve["uptime_s"] > 0
            assert serve["responses"] >= 2
            assert serve["status_codes"]["200"] >= 1
            assert serve["status_codes"]["404"] == 1
            # The shared payload carries the metrics snapshot too.
            metrics = json.loads(body)["cache"]["metrics"]
            assert "repro_requests_total" in metrics["counters"]


# ---------------------------------------------------------------------------
# Harness byte transparency
# ---------------------------------------------------------------------------


class TestByteTransparency:
    def test_artifact_bytes_identical_traced_and_untraced(
            self, fresh_cache, monkeypatch, tmp_path):
        from repro.pipeline.batch import format_artifact, run_artifact

        monkeypatch.delenv(obs.TRACE_ENV, raising=False)
        plain = format_artifact("table3", run_artifact("table3", TINY))
        monkeypatch.setenv(obs.TRACE_ENV, str(tmp_path / "traces"))
        traced = format_artifact("table3", run_artifact("table3", TINY))
        assert traced == plain
        assert list((tmp_path / "traces").glob("trace-*.jsonl"))
