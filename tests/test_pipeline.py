"""Tests for the ``repro.pipeline`` subsystem (cache + batch executor)."""

from __future__ import annotations

import time

import pytest

from repro.core import compile_stmt
from repro.formats import CSR, DENSE_VECTOR, Format, compressed, offChip
from repro.ir import index_vars
from repro.pipeline.batch import artifact_jobs, run_artifact, run_batch
from repro.pipeline.cache import (
    CompilationCache,
    compiler_version,
    disk_cache_dir,
    fingerprint_stmt,
    make_key,
    memoize_stage,
    stage_version,
)
from repro.pipeline.executor import Job, run_jobs
from repro.tensor import Tensor
from tests.helpers_kernels import build_small_kernel_stmt

# Cache isolation comes from the shared ``fresh_cache`` fixture in
# tests/conftest.py.


def _spmv_stmt(fmt=None, density=0.4, inner_par=16):
    rng_vals = [[1.0, 0.0, 2.0], [0.0, 3.0, 0.0], [4.0, 0.0, 5.0 * density]]
    A = Tensor("A", (3, 3), (fmt or CSR)(offChip)).from_dense(rng_vals)
    x = Tensor("x", (3,), DENSE_VECTOR(offChip)).from_dense([1.0, 2.0, 3.0])
    y = Tensor("y", (3,), DENSE_VECTOR(offChip))
    i, j = index_vars("i j")
    y[i] = A[i, j] * x[j]
    return y.get_index_stmt().environment("innerPar", inner_par)


def DCSR(memory=offChip):
    return Format([compressed, compressed], None, memory)


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


class TestFingerprint:
    def test_stable_across_rebuilds(self):
        a = fingerprint_stmt(_spmv_stmt(), "spmv")
        b = fingerprint_stmt(_spmv_stmt(), "spmv")
        assert a == b

    def test_changes_with_kernel_name(self):
        stmt = _spmv_stmt()
        assert fingerprint_stmt(stmt, "spmv") != fingerprint_stmt(stmt, "other")

    def test_changes_with_format(self):
        assert (fingerprint_stmt(_spmv_stmt(CSR), "spmv")
                != fingerprint_stmt(_spmv_stmt(DCSR), "spmv"))

    def test_changes_with_schedule(self):
        assert (fingerprint_stmt(_spmv_stmt(inner_par=16), "spmv")
                != fingerprint_stmt(_spmv_stmt(inner_par=8), "spmv"))

    def test_changes_with_tensor_data(self):
        assert (fingerprint_stmt(_spmv_stmt(density=0.4), "spmv")
                != fingerprint_stmt(_spmv_stmt(density=0.5), "spmv"))

    def test_make_key_namespaces_kinds(self):
        assert make_key("evaluate", "SpMV") != make_key("build", "SpMV")

    def test_compiler_version_is_stable(self):
        assert compiler_version() == compiler_version()
        assert len(compiler_version()) == 16


# ---------------------------------------------------------------------------
# Compilation cache
# ---------------------------------------------------------------------------


class TestCompileCache:
    def test_memoizes_identical_statements(self, fresh_cache):
        k1 = compile_stmt(_spmv_stmt(), "spmv_cache_test")
        assert fresh_cache.stats.misses == 1
        k2 = compile_stmt(_spmv_stmt(), "spmv_cache_test")
        assert k2 is k1
        assert fresh_cache.stats.memory_hits == 1

    def test_schedule_change_misses(self, fresh_cache):
        compile_stmt(_spmv_stmt(inner_par=16), "spmv_cache_test")
        compile_stmt(_spmv_stmt(inner_par=4), "spmv_cache_test")
        assert fresh_cache.stats.misses == 2
        assert fresh_cache.stats.hits == 0

    def test_format_change_misses(self, fresh_cache):
        compile_stmt(_spmv_stmt(CSR), "spmv_cache_test")
        compile_stmt(_spmv_stmt(DCSR), "spmv_cache_test")
        assert fresh_cache.stats.misses == 2
        assert fresh_cache.stats.hits == 0

    def test_cache_false_bypasses(self, fresh_cache):
        k1 = compile_stmt(_spmv_stmt(), "spmv_cache_test", cache=False)
        k2 = compile_stmt(_spmv_stmt(), "spmv_cache_test", cache=False)
        assert k1 is not k2
        assert fresh_cache.stats.misses == 0

    def test_no_cache_env_disables(self, fresh_cache, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        compile_stmt(_spmv_stmt(), "spmv_cache_test")
        compile_stmt(_spmv_stmt(), "spmv_cache_test")
        assert fresh_cache.stats.misses == 0
        assert len(fresh_cache) == 0

    def test_cached_kernel_still_runs(self, fresh_cache):
        compile_stmt(_spmv_stmt(), "spmv_cache_test")
        kernel = compile_stmt(_spmv_stmt(), "spmv_cache_test")
        # A = [[1,0,2],[0,3,0],[4,0,2]] · x = [1,2,3]  →  [7, 6, 10]
        assert kernel.run_dense() == pytest.approx([7.0, 6.0, 10.0])


class TestDiskStore:
    def test_round_trip_across_instances(self, tmp_path):
        first = CompilationCache(disk=tmp_path)
        first.put("a" * 64, {"answer": 42})
        # A fresh instance (fresh process, conceptually) hits the disk.
        second = CompilationCache(disk=tmp_path)
        assert second.get("a" * 64) == {"answer": 42}
        assert second.stats.disk_hits == 1

    def test_compiled_kernel_round_trip(self, tmp_path):
        stmt, _, _ = build_small_kernel_stmt("SpMV")
        kernel = compile_stmt(stmt, "spmv", cache=False)
        key = fingerprint_stmt(stmt, "spmv")
        CompilationCache(disk=tmp_path).put(key, kernel)
        loaded = CompilationCache(disk=tmp_path).get(key)
        assert loaded.source == kernel.source
        assert loaded.spatial_loc == kernel.spatial_loc

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = CompilationCache(disk=tmp_path)
        cache.put("b" * 64, [1, 2, 3])
        path = cache._entry_path("b" * 64)
        path.write_bytes(b"not a pickle")
        fresh = CompilationCache(disk=tmp_path)
        assert fresh.get("b" * 64, "missing") == "missing"
        assert not path.exists()  # corrupt entry was dropped

    def test_disk_disabled(self, tmp_path):
        cache = CompilationCache(disk=False)
        cache.put("c" * 64, 1)
        assert cache._entry_path("c" * 64) is None
        assert CompilationCache(disk=False).get("c" * 64) is None

    def test_lru_eviction_bounded_memory(self, tmp_path):
        cache = CompilationCache(max_entries=2, disk=False)
        for key in ("k1", "k2", "k3"):
            cache.put(key, key.upper())
        assert len(cache) == 2
        assert cache.get("k1") is None  # evicted, no disk fallback
        assert cache.get("k3") == "K3"

    def test_prune_caps_disk_entries(self, tmp_path):
        cache = CompilationCache(disk=tmp_path)
        for n in range(6):
            cache.put(f"{n:02d}" + "e" * 62, n)
        removed = cache.prune(max_entries=2)
        assert removed == 4
        assert cache.disk_info()["entries"] == 2

    def test_prune_tolerates_concurrently_removed_entries(self, tmp_path,
                                                          monkeypatch):
        from pathlib import Path

        cache = CompilationCache(disk=tmp_path)
        for n in range(4):
            cache.put(f"{n:02d}" + "a" * 62, n)
        victim = cache._entry_path("00" + "a" * 62)
        real_stat = Path.stat

        def racy_stat(self, *args, **kwargs):
            if self == victim:
                # Another shard worker unlinked this entry mid-walk.
                raise FileNotFoundError(str(self))
            return real_stat(self, *args, **kwargs)

        monkeypatch.setattr(Path, "stat", racy_stat)
        # Must neither raise nor abort: the 3 reachable entries are
        # considered and all but max_entries removed.
        assert cache.prune(max_entries=1) == 2

    def test_prune_bounds_stage_version_trees(self, tmp_path):
        # Dataset-stage entries live in their own version tree; the
        # oldest-first eviction must bound that tree too, not just the
        # compiler tree.
        cache = CompilationCache(disk=tmp_path)
        dataset_tree = stage_version("dataset")
        for n in range(5):
            cache.put(f"{n:02d}" + "b" * 62, n, version=dataset_tree)
        removed = cache.prune(max_entries=2)
        assert removed == 3
        assert sum(1 for _ in (tmp_path / dataset_tree).rglob("*.pkl")) == 2

    def test_disk_info_tolerates_vanishing_tree(self, tmp_path, monkeypatch):
        from pathlib import Path

        cache = CompilationCache(disk=tmp_path)
        cache.put("f" * 64, 1)

        def racy_rglob(self, pattern):
            raise FileNotFoundError(str(self))

        monkeypatch.setattr(Path, "rglob", racy_rglob)
        info = cache.disk_info()
        assert info["entries"] == 0 and info["bytes"] == 0

    def test_prune_removes_stale_version_trees(self, tmp_path):
        stale = tmp_path / ("0" * 16) / "ab"
        stale.mkdir(parents=True)
        (stale / ("ab" + "f" * 62 + ".pkl")).write_bytes(b"old")
        unrelated = tmp_path / "not-a-version-dir"
        unrelated.mkdir()
        cache = CompilationCache(disk=tmp_path)
        cache.put("d" * 64, 1)
        assert cache.prune() == 1  # the stale entry
        assert not stale.exists()
        assert unrelated.exists()  # non-cache content untouched
        assert cache.get("d" * 64) == 1  # current version intact


# ---------------------------------------------------------------------------
# Staged memoization
# ---------------------------------------------------------------------------


class TestStagedCache:
    def test_stage_version_is_narrower_for_datasets(self):
        # Dataset entries key on the data/format/tensor sources only, so
        # compiler edits elsewhere keep them warm.
        assert len(stage_version("dataset")) == 16
        assert stage_version("dataset") != compiler_version()
        assert stage_version("kernel") == compiler_version()

    def test_stage_counters(self, fresh_cache):
        memoize_stage("stats", ("k",), lambda: 1)
        memoize_stage("stats", ("k",), lambda: 1)
        stats = fresh_cache.stats
        assert stats.stage_misses["stats"] == 1
        assert stats.stage_hits["stats"] == 1
        assert "stats 1h/1m" in stats.stage_summary()
        assert stats.as_dict()["stages"]["stats"] == {"hits": 1, "misses": 1}

    def test_no_cache_bypasses_compile_stages(self, fresh_cache):
        calls = []
        memoize_stage("kernel", ("k",), lambda: calls.append(1))
        memoize_stage("kernel", ("k",), lambda: calls.append(1),
                      use_cache=False)
        assert len(calls) == 2  # second run recomputed

    def test_no_cache_still_serves_dataset_stage(self, fresh_cache):
        calls = []
        memoize_stage("dataset", ("d",), lambda: (calls.append(1), 42)[1])
        value = memoize_stage("dataset", ("d",), lambda: (calls.append(1), 42)[1],
                              use_cache=False)
        assert value == 42
        assert len(calls) == 1  # exempt stage: reused despite --no-cache
        assert fresh_cache.stats.stage_hits["dataset"] == 1

    def test_repro_no_cache_env_disables_even_datasets(self, fresh_cache,
                                                       monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        calls = []
        memoize_stage("dataset", ("d",), lambda: calls.append(1))
        memoize_stage("dataset", ("d",), lambda: calls.append(1))
        assert len(calls) == 2

    def test_dataset_entries_live_in_stage_version_tree(self, fresh_cache):
        from repro.eval.harness import load_dataset_cached

        load_dataset_cached("SpMV", "bcsstk30", TINY)
        base = disk_cache_dir()
        tree = base / stage_version("dataset")
        assert any(tree.rglob("*.pkl"))

    def test_no_cache_evaluation_reuses_datasets_only(self, fresh_cache):
        # The acceptance criterion: warm the dataset stage, then force a
        # --no-cache evaluation; the dataset stage must hit while the
        # compile-side stages recompute (no hits recorded for them).
        from repro.api import CompileRequest, evaluate

        request = CompileRequest(kernel="SpMV", dataset="bcsstk30",
                                 scale=TINY)
        warm = evaluate(request).platform_times()
        stats = fresh_cache.stats
        hits_before = dict(stats.stage_hits)
        cold = evaluate(request, use_cache=False).platform_times()
        assert cold.seconds == warm.seconds
        assert (stats.stage_hits.get("dataset", 0)
                == hits_before.get("dataset", 0) + 1)
        for compile_stage in ("build", "kernel", "evaluate", "stats",
                              "resources"):
            assert (stats.stage_hits.get(compile_stage, 0)
                    == hits_before.get(compile_stage, 0)), compile_stage

    def test_stages_shared_across_artifacts(self, fresh_cache):
        # Table 5's resource estimates reuse the entry the Table 6
        # simulation wrote for the same (kernel, dataset, scale) cell.
        from repro.api import CompileRequest, evaluate, first_dataset
        from repro.pipeline.batch import table5_cell

        evaluate(CompileRequest(kernel="SpMV",
                                dataset=first_dataset("SpMV"), scale=TINY))
        misses_before = fresh_cache.stats.stage_misses.get("resources", 0)
        table5_cell("SpMV", TINY)
        assert (fresh_cache.stats.stage_misses.get("resources", 0)
                == misses_before)
        assert fresh_cache.stats.stage_hits.get("resources", 0) >= 1


# ---------------------------------------------------------------------------
# Executor
# ---------------------------------------------------------------------------


def _slow_identity(value, delay=0.0):
    time.sleep(delay)
    return value


def _boom(value):
    raise ValueError(f"boom {value}")


class TestExecutor:
    def test_results_in_submission_order(self):
        # Later jobs finish first; results must still come back in order.
        jobs = [Job((n,), _slow_identity, (n, 0.05 * (3 - n)))
                for n in range(4)]
        results = run_jobs(jobs, max_workers=4)
        assert [r.value for r in results] == [0, 1, 2, 3]
        assert all(r.ok for r in results)

    def test_serial_and_parallel_agree(self):
        jobs = [Job((n,), _slow_identity, (n,)) for n in range(8)]
        serial = [r.value for r in run_jobs(jobs, max_workers=1)]
        parallel = [r.value for r in run_jobs(jobs, max_workers=4)]
        assert serial == parallel

    def test_failure_isolation(self):
        jobs = [
            Job(("ok1",), _slow_identity, (1,)),
            Job(("bad",), _boom, (2,)),
            Job(("ok2",), _slow_identity, (3,)),
        ]
        results = run_jobs(jobs, max_workers=2)
        assert [r.ok for r in results] == [True, False, True]
        assert "boom 2" in results[1].error
        assert results[0].value == 1 and results[2].value == 3
        with pytest.raises(RuntimeError, match="bad"):
            results[1].unwrap()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            run_jobs([Job((1,), _slow_identity, (1,))] * 2,
                     max_workers=2, kind="fiber")


# ---------------------------------------------------------------------------
# Batch artefacts
# ---------------------------------------------------------------------------

TINY = 0.02


class TestBatch:
    def test_table6_job_list_covers_all_combinations(self):
        from repro.data import datasets_for
        from repro.kernels import KERNEL_ORDER

        jobs = artifact_jobs("table6", TINY)
        expected = [(k, d.name, "*") for k in KERNEL_ORDER
                    for d in datasets_for(k)]
        assert [j.key for j in jobs] == expected

    def test_unknown_artifact_rejected(self):
        with pytest.raises(KeyError):
            artifact_jobs("table7", TINY)

    def test_parallel_table6_identical_to_serial(self):
        from repro.eval.harness import format_table6, table6

        serial = table6(TINY, jobs=1, use_cache=False)
        parallel = table6(TINY, jobs=4, use_cache=False)
        assert serial == parallel  # bitwise-equal floats
        assert format_table6(serial) == format_table6(parallel)

    def test_warm_cache_returns_equal_table6(self, fresh_cache):
        from repro.eval.harness import table6

        cold = table6(TINY)
        hits_before = fresh_cache.stats.hits
        warm = table6(TINY)
        assert warm == cold
        assert fresh_cache.stats.hits > hits_before

    def test_run_batch_summary_and_texts(self):
        run = run_batch(["table3"], TINY, jobs=2, use_cache=False)
        assert not run.failures
        assert "Table 3" in run.texts["table3"]
        assert "10 jobs" in run.summary()

    def test_run_artifact_raises_on_failure(self, monkeypatch):
        from repro.pipeline import batch

        def broken(kernel_name, scale, use_cache=None):
            raise RuntimeError("injected failure")

        monkeypatch.setattr(batch, "table3_cell", broken)
        with pytest.raises(RuntimeError, match="injected failure"):
            run_artifact("table3", TINY, jobs=2)


# ---------------------------------------------------------------------------
# Harness integration
# ---------------------------------------------------------------------------


class TestEvaluateCache:
    def test_evaluate_memoizes(self, fresh_cache):
        from repro.api import CompileRequest, evaluate

        request = CompileRequest(kernel="SpMV", dataset="bcsstk30",
                                 scale=TINY)
        first = evaluate(request).platform_times()
        misses = fresh_cache.stats.misses
        second = evaluate(request).platform_times()
        assert second.seconds == first.seconds
        assert fresh_cache.stats.misses == misses  # pure hit

    def test_platform_filter(self, fresh_cache):
        from repro.api import CompileRequest, evaluate

        times = evaluate(CompileRequest(
            kernel="SpMV", dataset="bcsstk30", scale=TINY,
            platforms=("Capstan (HBM2E)", "V100 GPU"))).platform_times()
        assert set(times.seconds) == {"Capstan (HBM2E)", "V100 GPU"}

    def test_unknown_platform_rejected(self, fresh_cache):
        from repro.api import CompileRequest, evaluate

        with pytest.raises(ValueError, match="unknown platform"):
            evaluate(CompileRequest(kernel="SpMV", dataset="bcsstk30",
                                    scale=TINY, platforms=("TPU v5",)))


class TestCli:
    def test_batch_list(self, capsys):
        from repro.__main__ import main

        assert main(["batch", "table6", "--list", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "SpMV:bcsstk30:*" in out

    def test_batch_runs_artifacts(self, capsys, fresh_cache):
        from repro.__main__ import main

        assert main(["batch", "table3", "--scale", "0.02", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "batch: 10 jobs" in out

    def test_tables_jobs_flag(self, capsys, fresh_cache):
        from repro.__main__ import main

        assert main(["tables", "table5", "--jobs", "2", "--no-cache"]) == 0
        assert "Table 5" in capsys.readouterr().out

    def test_cache_info_and_clear(self, capsys, fresh_cache):
        from repro.__main__ import main

        compile_stmt(_spmv_stmt(), "spmv_cli_cache")
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "cache dir:" in out and "entries:" in out
        assert main(["cache", "clear"]) == 0
        assert fresh_cache.disk_info()["entries"] == 0
