"""Unit tests for the memory analysis (Section 6 bindings)."""


from repro.core import analyze, plan_memory
from repro.formats import MemoryType
from tests.helpers_kernels import build_small_kernel_stmt


def plan_for(name: str):
    stmt, out, tensors = build_small_kernel_stmt(name)
    analysis = analyze(stmt)
    return plan_memory(analysis), analysis


class TestSddmmBindings:
    """The Figure 8 / Figure 11 narrative for the running example."""

    def setup_method(self):
        self.plan, self.analysis = plan_for("SDDMM")

    def test_b_pos_dense_sram_at_top(self):
        b = self.plan.binding("B", "pos1")
        assert b.memory is MemoryType.SRAM_DENSE
        assert b.alloc_depth == 0

    def test_b_crd_fifo_in_i_body(self):
        b = self.plan.binding("B", "crd1")
        assert b.memory is MemoryType.FIFO
        assert b.alloc_depth == 1  # allocated alongside the j loop

    def test_b_vals_fifo_in_order(self):
        b = self.plan.binding("B", "vals")
        assert b.memory is MemoryType.FIFO
        assert b.alloc_depth == 1

    def test_c_dense_slice_per_row(self):
        b = self.plan.binding("C", "vals")
        assert b.memory is MemoryType.SRAM_DENSE
        assert not b.staged_full
        assert b.alloc_depth == 1  # row i slice

    def test_d_dense_slice_per_column(self):
        b = self.plan.binding("D", "vals")
        assert b.memory is MemoryType.SRAM_DENSE
        assert b.alloc_depth == 2  # column j slice (Figure 11 line 30)

    def test_output_streams(self):
        assert self.plan.binding("A", "vals").memory is MemoryType.FIFO
        assert self.plan.binding("A", "crd1").memory is MemoryType.FIFO
        assert self.plan.binding("A", "pos1").memory is MemoryType.SRAM_DENSE

    def test_workspace_register(self):
        assert self.plan.binding("ws", "scalar").memory is MemoryType.REGISTER

    def test_no_shuffle(self):
        assert not any(b.uses_shuffle for b in self.plan.bindings.values())


class TestSpmvBindings:
    def setup_method(self):
        self.plan, self.analysis = plan_for("SpMV")

    def test_x_gathered_through_shuffle(self):
        b = self.plan.binding("x", "vals")
        assert b.memory is MemoryType.SRAM_SPARSE
        assert b.uses_shuffle
        assert b.staged_full

    def test_a_vals_fifo(self):
        assert self.plan.binding("A", "vals").memory is MemoryType.FIFO

    def test_output_vector_fifo(self):
        assert self.plan.binding("y", "vals").memory is MemoryType.FIFO


class TestCoiterationBindings:
    def test_innerprod_vals_sparse_sram(self):
        plan, _ = plan_for("InnerProd")
        for t in ("B", "C"):
            b = plan.binding(t, "vals")
            assert b.memory is MemoryType.SRAM_SPARSE
            # AND scans do not cross lanes.
            assert not b.uses_shuffle

    def test_innerprod_bitvectors(self):
        plan, _ = plan_for("InnerProd")
        assert plan.get("B", "bv1") is not None
        assert plan.get("B", "bv2") is not None
        assert plan.binding("B", "bv1").memory is MemoryType.BIT_VECTOR

    def test_plus2_union_uses_shuffle(self):
        plan, _ = plan_for("Plus2")
        assert plan.binding("B", "vals").uses_shuffle
        assert plan.binding("C", "vals").uses_shuffle
        assert plan.shuffle_levels() >= 1

    def test_plus3_workspace_sram(self):
        plan, _ = plan_for("Plus3")
        b = plan.binding("T", "vals")
        assert b.memory is MemoryType.SRAM_SPARSE


class TestDenseOperandStaging:
    def test_mttkrp_factors_staged_full(self):
        plan, _ = plan_for("MTTKRP")
        for t in ("C", "D"):
            b = plan.binding(t, "vals")
            assert b.memory is MemoryType.SRAM_DENSE
            assert b.staged_full  # strided slices: whole tensor once
            assert not b.uses_shuffle

    def test_ttm_factor_staged_full(self):
        plan, _ = plan_for("TTM")
        b = plan.binding("C", "vals")
        assert b.staged_full
        assert not b.uses_shuffle

    def test_ttv_vector_gathered(self):
        plan, _ = plan_for("TTV")
        b = plan.binding("c", "vals")
        assert b.memory is MemoryType.SRAM_SPARSE
        assert b.uses_shuffle


class TestAnalysisStructure:
    def test_sddmm_depths(self):
        _, analysis = plan_for("SDDMM")
        depths = {f.ivar.name: f.depth for f in analysis.foralls}
        assert depths == {"i": 0, "j": 1, "k": 2}

    def test_sddmm_roles(self):
        _, analysis = plan_for("SDDMM")
        assert analysis.output.name == "A"
        assert {t.name for t in analysis.inputs} == {"B", "C", "D"}
        assert {t.name for t in analysis.workspaces} == {"ws"}

    def test_mapcall_recorded(self):
        _, analysis = plan_for("SDDMM")
        k_info = [f for f in analysis.foralls if f.ivar.name == "k"][0]
        assert k_info.mapped is not None
        assert k_info.mapped.func == "Reduction"

    def test_plus3_producer_consumer_depths(self):
        _, analysis = plan_for("Plus3")
        depths = {f.ivar.name: f.depth for f in analysis.foralls}
        assert depths["i"] == 0
        assert depths["j"] == 1 and depths["jw"] == 1

    def test_report_mentions_every_tensor(self):
        plan, analysis = plan_for("SDDMM")
        report = plan.report()
        for name in ("A", "B", "C", "D", "ws"):
            assert name in report
