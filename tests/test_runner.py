"""Unit tests for the host-side runner (symbol/DRAM binding, assembly)."""

import pytest

from repro.core import compile_stmt
from repro.core.runner import assemble_output, bind_dram, bind_symbols
from repro.spatial.interp import execute
from tests.helpers_kernels import build_small_kernel_stmt


@pytest.fixture
def spmv():
    stmt, out, tensors = build_small_kernel_stmt("SpMV")
    kernel = compile_stmt(stmt, "spmv")
    return kernel, out, tensors


class TestBindSymbols:
    def test_dimensions(self, spmv):
        kernel, out, tensors = spmv
        syms = bind_symbols(kernel.program, kernel.tensors, "y")
        assert syms["A1_dim"] == 7
        assert syms["A2_dim"] == 9
        assert syms["x1_dim"] == 9
        assert syms["y1_dim"] == 7

    def test_nnz(self, spmv):
        kernel, out, tensors = spmv
        syms = bind_symbols(kernel.program, kernel.tensors, "y")
        assert syms["A2_nnz"] == tensors["A"].nnz

    def test_staging_capacity_bound(self, spmv):
        kernel, out, tensors = spmv
        syms = bind_symbols(kernel.program, kernel.tensors, "y")
        assert syms["nnz_accel_max"] > max(tensors["A"].nnz, 9)

    def test_scalar_inputs_bound(self):
        stmt, out, tensors = build_small_kernel_stmt("MatTransMul")
        kernel = compile_stmt(stmt, "mtm")
        syms = bind_symbols(kernel.program, kernel.tensors, "y")
        assert syms["alpha"] == 2.0
        assert syms["beta"] == 3.0

    def test_output_nnz_upper_bound(self):
        stmt, out, tensors = build_small_kernel_stmt("Plus3")
        kernel = compile_stmt(stmt, "plus3")
        syms = bind_symbols(kernel.program, kernel.tensors, "A")
        assert syms["A2_nnz"] >= 6 * 8  # dense upper bound


class TestBindDram:
    def test_input_arrays_present(self, spmv):
        kernel, out, tensors = spmv
        data = bind_dram(kernel.program, kernel.tensors)
        assert "A2_pos_dram" in data
        assert "A2_crd_dram" in data
        assert "A_vals_dram" in data
        assert "x_vals_dram" in data

    def test_output_arrays_not_bound(self, spmv):
        kernel, out, tensors = spmv
        data = bind_dram(kernel.program, kernel.tensors)
        assert "y_vals_dram" not in data

    def test_contents_match_storage(self, spmv):
        kernel, out, tensors = spmv
        data = bind_dram(kernel.program, kernel.tensors)
        st = tensors["A"].storage
        assert data["A2_crd_dram"].tolist() == st.levels[1].crd.tolist()
        assert data["A_vals_dram"].tolist() == st.vals.tolist()


class TestAssembleOutput:
    def test_dense_vector_round_trip(self, spmv):
        kernel, out, tensors = spmv
        syms = bind_symbols(kernel.program, kernel.tensors, "y")
        data = bind_dram(kernel.program, kernel.tensors)
        machine = execute(kernel.program, data, syms)
        storage = assemble_output(machine, kernel.program, out)
        assert storage.order == 1
        assert len(storage.vals) == 7

    def test_compressed_output_levels(self):
        stmt, out, tensors = build_small_kernel_stmt("Plus2")
        kernel = compile_stmt(stmt, "plus2")
        storage = kernel.run()
        # UCC output: dense level then two compressed levels.
        from repro.tensor.storage import CompressedLevel, DenseLevel

        assert isinstance(storage.levels[0], DenseLevel)
        assert isinstance(storage.levels[1], CompressedLevel)
        assert isinstance(storage.levels[2], CompressedLevel)
        # pos arrays chain: level-2 parent count = level-1 nnz.
        assert len(storage.levels[2].pos) == storage.levels[1].nnz + 1

    def test_scalar_output(self):
        stmt, out, tensors = build_small_kernel_stmt("InnerProd")
        kernel = compile_stmt(stmt, "innerprod")
        storage = kernel.run()
        assert storage.order == 0
        assert len(storage.vals) == 1
