"""Unit tests for the user-facing Tensor API."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.formats import CSC, CSR, DENSE_VECTOR, offChip, onChip
from repro.tensor import Tensor, scalar, vector


class TestConstruction:
    def test_default_dense_format(self):
        t = Tensor("t", (3, 4))
        assert t.format.is_all_dense
        assert t.order == 2

    def test_memory_shorthand(self):
        t = Tensor("t", (3,), memory=onChip)
        assert t.is_on_chip

    def test_memory_overrides_format_region(self):
        t = Tensor("t", (3, 4), CSR(offChip), memory=onChip)
        assert t.is_on_chip
        assert t.format.has_compressed_level

    def test_format_order_mismatch(self):
        with pytest.raises(ValueError, match="order"):
            Tensor("t", (3,), CSR(offChip))

    def test_auto_name(self):
        a, b = Tensor(shape=(2,)), Tensor(shape=(2,))
        assert a.name != b.name

    def test_scalar_and_vector_helpers(self):
        s = scalar("s", onChip)
        assert s.is_scalar and s.is_on_chip
        v = vector("v", 5)
        assert v.shape == (5,)


class TestDataIngestion:
    def test_insert_then_storage(self):
        t = Tensor("t", (3, 3), CSR(offChip))
        t.insert((0, 1), 2.0)
        t.insert((2, 2), 3.0)
        d = t.to_dense()
        assert d[0, 1] == 2.0 and d[2, 2] == 3.0
        assert t.nnz == 2

    def test_insert_wrong_arity(self):
        t = Tensor("t", (3, 3), CSR(offChip))
        with pytest.raises(ValueError):
            t.insert((1,), 1.0)

    def test_incremental_insert_after_pack(self):
        t = Tensor("t", (3, 3), CSR(offChip))
        t.insert((0, 0), 1.0)
        assert t.nnz == 1
        t.insert((1, 1), 2.0)
        assert t.nnz == 2  # repack merges pending entries

    def test_from_dense_shape_check(self):
        t = Tensor("t", (3, 3), CSR(offChip))
        with pytest.raises(ValueError):
            t.from_dense(np.zeros((2, 2)))

    def test_from_coo(self, rng):
        t = Tensor("t", (4, 4), CSR(offChip))
        t.from_coo(np.array([[1, 2], [3, 0]]), np.array([5.0, 6.0]))
        d = t.to_dense()
        assert d[1, 2] == 5.0 and d[3, 0] == 6.0

    def test_scalar_value(self):
        s = scalar("s")
        s.insert((), 7.5)
        assert s.scalar_value() == 7.5
        t = Tensor("t", (2,))
        with pytest.raises(TypeError):
            t.scalar_value()

    def test_empty_tensor_storage(self):
        t = Tensor("t", (3, 3), CSR(offChip))
        assert t.nnz == 0
        assert np.array_equal(t.to_dense(), np.zeros((3, 3)))


class TestScipyInterop:
    def test_round_trip(self, rng):
        m = sp.random(8, 6, density=0.3, random_state=1, format="csr")
        t = Tensor("t", (8, 6), CSR(offChip)).from_scipy(m)
        assert np.allclose(t.to_scipy().toarray(), m.toarray())
        assert np.allclose(t.to_dense(), m.toarray())

    def test_csc_storage_from_scipy(self):
        m = sp.random(5, 5, density=0.4, random_state=2)
        t = Tensor("t", (5, 5), CSC(offChip)).from_scipy(m)
        assert np.allclose(t.to_dense(), m.toarray())

    def test_shape_mismatch(self):
        m = sp.random(4, 4, density=0.5, random_state=0)
        t = Tensor("t", (5, 5), CSR(offChip))
        with pytest.raises(ValueError):
            t.from_scipy(m)

    def test_non_matrix_rejected(self):
        v = Tensor("v", (4,), DENSE_VECTOR(offChip))
        with pytest.raises(TypeError):
            v.to_scipy()
        with pytest.raises(TypeError):
            v.from_scipy(sp.eye(4))


class TestMisc:
    def test_copy_structure(self):
        t = Tensor("t", (3, 4), CSR(offChip))
        c = t.copy_structure("c")
        assert c.shape == t.shape
        assert c.format.mode_formats == t.format.mode_formats
        assert c.nnz == 0

    def test_repr(self):
        t = Tensor("t", (3, 4), CSR(offChip))
        assert "t" in repr(t) and "(3, 4)" in repr(t)

    def test_indexing_requires_index_vars(self):
        t = Tensor("t", (3,))
        with pytest.raises(TypeError):
            t[0]

    def test_get_index_stmt(self, rng):
        from repro.ir import index_vars
        from repro.schedule import IndexStmt

        t = Tensor("t", (3,), DENSE_VECTOR(offChip)).from_dense(rng.random(3))
        o = Tensor("o", (3,), DENSE_VECTOR(offChip))
        (i,) = index_vars("i")
        o[i] = t[i] * 2
        assert isinstance(o.get_index_stmt(), IndexStmt)
