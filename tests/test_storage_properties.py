"""Property-based tests for tensor storage (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import Format, compressed, dense, offChip
from repro.tensor.storage import from_dense, pack, to_dense, unpack


@st.composite
def formats_and_dims(draw, max_order=3, max_dim=6):
    order = draw(st.integers(1, max_order))
    levels = [draw(st.sampled_from([dense, compressed])) for _ in range(order)]
    ordering = draw(st.permutations(list(range(order))))
    dims = tuple(draw(st.integers(1, max_dim)) for _ in range(order))
    return Format(levels, ordering, offChip), dims


@st.composite
def coo_entries(draw, dims):
    n = draw(st.integers(0, 12))
    coords = [
        tuple(draw(st.integers(0, d - 1)) for d in dims) for _ in range(n)
    ]
    vals = [draw(st.floats(0.5, 10.0, allow_nan=False)) for _ in range(n)]
    return np.array(coords, dtype=np.int64).reshape(n, len(dims)), np.array(vals)


@given(formats_and_dims(), st.data())
@settings(max_examples=120, deadline=None)
def test_pack_unpack_preserves_values(fmt_dims, data):
    """pack → unpack reproduces the dense tensor for any format."""
    fmt, dims = fmt_dims
    coords, vals = data.draw(coo_entries(dims))
    st_packed = pack(coords, vals, dims, fmt)
    reference = np.zeros(dims)
    for c, v in zip(coords, vals):
        reference[tuple(c)] += v
    assert np.allclose(to_dense(st_packed), reference)


@given(formats_and_dims(), st.data())
@settings(max_examples=80, deadline=None)
def test_unpack_coords_within_bounds(fmt_dims, data):
    fmt, dims = fmt_dims
    coords, vals = data.draw(coo_entries(dims))
    st_packed = pack(coords, vals, dims, fmt)
    out_coords, out_vals = unpack(st_packed)
    assert len(out_coords) == len(out_vals)
    for mode, d in enumerate(dims):
        if len(out_coords):
            assert out_coords[:, mode].min() >= 0
            assert out_coords[:, mode].max() < d


@given(formats_and_dims(), st.data())
@settings(max_examples=80, deadline=None)
def test_pos_arrays_are_monotone(fmt_dims, data):
    """Compressed-level position arrays are non-decreasing and span crd."""
    fmt, dims = fmt_dims
    coords, vals = data.draw(coo_entries(dims))
    st_packed = pack(coords, vals, dims, fmt)
    for lvl in st_packed.levels:
        if hasattr(lvl, "pos"):
            pos = lvl.pos
            assert (np.diff(pos) >= 0).all()
            assert pos[0] == 0
            assert pos[-1] == len(lvl.crd)


@given(formats_and_dims(), st.data())
@settings(max_examples=80, deadline=None)
def test_crd_sorted_within_segments(fmt_dims, data):
    """Coordinates within each position segment are strictly increasing."""
    fmt, dims = fmt_dims
    coords, vals = data.draw(coo_entries(dims))
    st_packed = pack(coords, vals, dims, fmt)
    for lvl in st_packed.levels:
        if hasattr(lvl, "pos"):
            for p in range(len(lvl.pos) - 1):
                seg = lvl.crd[lvl.pos[p]:lvl.pos[p + 1]]
                assert (np.diff(seg) > 0).all()


@given(
    st.integers(1, 8), st.integers(1, 8),
    st.floats(0.0, 1.0), st.integers(0, 2 ** 31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_from_dense_round_trip_matrix(n, m, density, seed):
    rng = np.random.default_rng(seed)
    from repro.formats import CSR

    a = (rng.random((n, m)) < density) * rng.random((n, m))
    assert np.allclose(to_dense(from_dense(a, CSR(offChip))), a)


@given(st.integers(0, 2 ** 31 - 1))
@settings(max_examples=40, deadline=None)
def test_pack_is_deterministic(seed):
    rng = np.random.default_rng(seed)
    coords = rng.integers(0, 5, size=(10, 2))
    vals = rng.random(10)
    from repro.formats import CSR

    a = pack(coords, vals, (5, 5), CSR(offChip))
    b = pack(coords, vals, (5, 5), CSR(offChip))
    assert np.array_equal(a.vals, b.vals)
    assert np.array_equal(a.levels[1].crd, b.levels[1].crd)
    assert np.array_equal(a.levels[1].pos, b.levels[1].pos)
