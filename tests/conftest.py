"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.formats import CSR, DENSE_VECTOR, offChip
from repro.tensor import Tensor


@pytest.fixture(scope="session", autouse=True)
def _isolated_cache_dir(tmp_path_factory):
    """Keep the suite hermetic: never write to the user's ~/.cache/repro.

    The pipeline cache resolves REPRO_CACHE_DIR dynamically, so setting it
    here (unless the caller already pinned one) redirects every disk-cache
    write of the whole session to a temporary directory.
    """
    if "REPRO_CACHE_DIR" not in os.environ:
        os.environ["REPRO_CACHE_DIR"] = str(
            tmp_path_factory.mktemp("repro-cache")
        )


@pytest.fixture
def fresh_cache(monkeypatch, tmp_path):
    """A pristine default cache backed by a private disk directory.

    Swaps the process-wide default cache and points REPRO_CACHE_DIR at a
    per-test directory; subprocess workers inherit the variable through
    the environment, so local-transport dispatch tests share the store
    too. Shared by the pipeline/shard/dispatch/steal suites — the cache
    isolation mechanism lives in exactly one place.
    """
    from repro.pipeline import cache as cache_mod
    from repro.pipeline.cache import CompilationCache

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    cache = CompilationCache()
    monkeypatch.setattr(cache_mod, "_default_cache", cache)
    return cache


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def random_sparse(rng: np.random.Generator, shape, density: float = 0.4) -> np.ndarray:
    """A random dense array with ``density`` fraction of nonzeros."""
    mask = rng.random(shape) < density
    vals = rng.random(shape) + 0.5
    return mask * vals


def csr_tensor(name: str, array: np.ndarray) -> Tensor:
    return Tensor(name, array.shape, CSR(offChip)).from_dense(array)


def dense_vector(name: str, array: np.ndarray) -> Tensor:
    return Tensor(name, array.shape, DENSE_VECTOR(offChip)).from_dense(array)
