"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats import CSR, DENSE_VECTOR, offChip
from repro.tensor import Tensor


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def random_sparse(rng: np.random.Generator, shape, density: float = 0.4) -> np.ndarray:
    """A random dense array with ``density`` fraction of nonzeros."""
    mask = rng.random(shape) < density
    vals = rng.random(shape) + 0.5
    return mask * vals


def csr_tensor(name: str, array: np.ndarray) -> Tensor:
    return Tensor(name, array.shape, CSR(offChip)).from_dense(array)


def dense_vector(name: str, array: np.ndarray) -> Tensor:
    return Tensor(name, array.shape, DENSE_VECTOR(offChip)).from_dense(array)
