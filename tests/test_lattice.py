"""Unit tests for merge lattices (TACO's co-iteration IR, Section 9)."""

import numpy as np
import pytest

from repro.formats import CSR, DENSE_MATRIX, offChip
from repro.ir import index_vars
from repro.ir.lattice import build_lattice, iteration_space
from repro.tensor import Tensor


@pytest.fixture
def ops():
    i, j = index_vars("i j")
    B = Tensor("B", (4, 8), CSR(offChip))
    C = Tensor("C", (4, 8), CSR(offChip))
    D = Tensor("D", (4, 8), CSR(offChip))
    U = Tensor("U", (4, 8), DENSE_MATRIX(offChip))
    return i, j, B, C, D, U


class TestLatticeConstruction:
    def test_single_iterator(self, ops):
        i, j, B, *_ = ops
        lat = build_lattice(B[i, j], j)
        assert len(lat.points) == 1
        assert lat.is_intersection
        assert not lat.has_universe

    def test_intersection_one_point(self, ops):
        """B * C: one lattice point; iteration stops when either ends."""
        i, j, B, C, *_ = ops
        lat = build_lattice(B[i, j] * C[i, j], j)
        assert len(lat.points) == 1
        assert len(lat.top) == 2
        assert lat.is_intersection

    def test_union_three_points(self, ops):
        """B + C: {B,C} > {B} > {C} — TACO's two-way merge with tails."""
        i, j, B, C, *_ = ops
        lat = build_lattice(B[i, j] + C[i, j], j)
        assert len(lat.points) == 3
        assert lat.is_full_union
        assert len(lat.top) == 2

    def test_three_way_union_seven_points(self, ops):
        """B + C + D: every non-empty subset is a point (2^3 - 1 = 7)."""
        i, j, B, C, D, _ = ops
        lat = build_lattice(B[i, j] + C[i, j] + D[i, j], j)
        assert len(lat.points) == 7
        assert lat.is_full_union

    def test_mixed_mul_add(self, ops):
        """B*C + D: {B,C,D} > {B,C} > {D} (and the product point subsets
        that contain D alone collapse into these)."""
        i, j, B, C, D, _ = ops
        lat = build_lattice(B[i, j] * C[i, j] + D[i, j], j)
        sets = {frozenset(p.iterators) for p in lat.points}
        assert frozenset([id(B), id(C), id(D)]) in sets
        assert frozenset([id(B), id(C)]) in sets
        assert frozenset([id(D)]) in sets
        # {B} or {C} alone contribute nothing (their product term dies).
        assert frozenset([id(B)]) not in sets

    def test_universe_absorbs_union(self, ops):
        i, j, B, _, _, U = ops
        lat = build_lattice(B[i, j] + U[i, j], j)
        assert lat.has_universe

    def test_universe_in_product_drops(self, ops):
        """B * U iterates only B (locate into the dense operand)."""
        i, j, B, _, _, U = ops
        lat = build_lattice(B[i, j] * U[i, j], j)
        assert not lat.has_universe
        assert len(lat.points) == 1

    def test_points_ordered_descending(self, ops):
        i, j, B, C, D, _ = ops
        lat = build_lattice(B[i, j] + C[i, j] + D[i, j], j)
        sizes = [len(p) for p in lat.points]
        assert sizes == sorted(sizes, reverse=True)

    def test_describe(self, ops):
        i, j, B, C, *_ = ops
        text = build_lattice(B[i, j] + C[i, j], j).describe()
        assert "lattice(j)" in text and "B" in text and "C" in text


class TestIterationSpace:
    def test_intersection_space(self, ops):
        i, j, B, C, *_ = ops
        lat = build_lattice(B[i, j] * C[i, j], j)
        space = iteration_space(lat, {
            id(B): np.array([1, 3, 5]), id(C): np.array([3, 5, 7]),
        }, 8)
        assert space.tolist() == [3, 5]

    def test_union_space(self, ops):
        i, j, B, C, *_ = ops
        lat = build_lattice(B[i, j] + C[i, j], j)
        space = iteration_space(lat, {
            id(B): np.array([1, 3]), id(C): np.array([3, 7]),
        }, 8)
        assert space.tolist() == [1, 3, 7]

    def test_mixed_space(self, ops):
        """(B*C) + D visits (B∩C) ∪ D."""
        i, j, B, C, D, _ = ops
        lat = build_lattice(B[i, j] * C[i, j] + D[i, j], j)
        space = iteration_space(lat, {
            id(B): np.array([0, 2, 4]),
            id(C): np.array([2, 4, 6]),
            id(D): np.array([5]),
        }, 8)
        assert space.tolist() == [2, 4, 5]

    def test_universe_space(self, ops):
        i, j, B, _, _, U = ops
        lat = build_lattice(B[i, j] + U[i, j], j)
        assert iteration_space(lat, {id(B): np.array([1])}, 5).tolist() == [
            0, 1, 2, 3, 4,
        ]

    def test_empty_operands(self, ops):
        i, j, B, C, *_ = ops
        lat = build_lattice(B[i, j] * C[i, j], j)
        space = iteration_space(lat, {
            id(B): np.zeros(0, dtype=np.int64), id(C): np.array([1]),
        }, 8)
        assert space.tolist() == []
