"""The typed compile-request API (``repro.api`` / ``repro.service``)."""

from __future__ import annotations

import json

import pytest

import repro.api as api
from repro.service.stats import cache_stats_payload, render_cache_stats

TINY = 0.02


def _req(**kwargs) -> api.CompileRequest:
    defaults = dict(kernel="SpMV", dataset="bcsstk30", scale=TINY)
    defaults.update(kwargs)
    return api.CompileRequest(**defaults)


class TestCompileRequest:
    def test_resolved_fills_defaults(self):
        req = api.CompileRequest(kernel="SpMV").resolved()
        assert req.dataset == api.first_dataset("SpMV")
        assert req.scale == api.DEFAULT_SCALE
        assert req.seed == api.DEFAULT_SEED
        assert req.action == "evaluate"

    def test_canonical_json_is_the_key(self):
        # Equivalent requests — defaults spelled out vs omitted — must
        # produce identical canonical JSON, because that JSON *is* the
        # cache-key input shared by every construction path.
        minimal = api.CompileRequest(kernel="SpMV")
        explicit = api.CompileRequest(
            kernel="SpMV", dataset=api.first_dataset("SpMV"),
            scale=api.DEFAULT_SCALE, seed=api.DEFAULT_SEED)
        assert minimal.canonical_json() == explicit.canonical_json()
        # Deterministic rendering: sorted keys, no whitespace.
        text = minimal.canonical_json()
        assert text == json.dumps(json.loads(text), sort_keys=True,
                                  separators=(",", ":"))

    def test_compile_action_drops_runtime_fields(self):
        # Platform filter and engine don't affect generated code, so a
        # compile request canonicalises them away (wider cache sharing).
        req = _req(action="compile", platforms=("V100 GPU",),
                   engine="numpy").resolved()
        canon = req.canonical()
        assert canon["platforms"] is None
        assert canon["engine"] is None
        assert req.stage == "compile"
        assert _req().resolved().stage == "evaluate"

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            api.CompileRequest(kernel="NoSuch").resolved()
        with pytest.raises(ValueError, match="unknown dataset"):
            _req(dataset="nope").resolved()
        with pytest.raises(ValueError, match="unknown engine"):
            _req(engine="fortran").resolved()
        with pytest.raises(ValueError, match="action"):
            _req(action="transpile").resolved()
        with pytest.raises(ValueError, match="scale"):
            _req(scale=-1.0).resolved()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            api.CompileRequest.from_dict({"kernel": "SpMV", "sclae": 0.1})
        with pytest.raises(ValueError, match="kernel"):
            api.CompileRequest.from_dict({"scale": 0.1})
        with pytest.raises(ValueError):
            api.CompileRequest.from_dict({"kernel": "SpMV",
                                          "platforms": "V100 GPU"})

    def test_json_round_trip(self):
        req = _req(platforms=("Capstan (HBM2E)", "V100 GPU")).resolved()
        again = api.CompileRequest.from_json(req.canonical_json()).resolved()
        assert again.canonical_json() == req.canonical_json()


class TestVerbs:
    def test_evaluate_result_round_trips_bytes(self, fresh_cache):
        result = api.evaluate(_req())
        clone = api.CompileResult.from_dict(
            json.loads(result.to_json()))
        assert clone.to_json() == result.to_json()
        times = result.platform_times()
        assert times.normalised()[api.BASELINE_PLATFORM] == 1.0

    def test_equivalent_requests_share_the_cache_entry(self, fresh_cache):
        api.evaluate(api.CompileRequest(kernel="SpMV", scale=TINY))
        misses = fresh_cache.stats.misses
        api.evaluate(api.CompileRequest(
            kernel="SpMV", dataset=api.first_dataset("SpMV"), scale=TINY,
            seed=api.DEFAULT_SEED))
        assert fresh_cache.stats.misses == misses  # pure hit

    def test_cached_peeks_without_computing(self, fresh_cache):
        req = _req()
        assert api.cached(req) is None
        result = api.evaluate(req)
        hit = api.cached(req)
        assert hit is not None
        assert hit.to_json() == result.to_json()
        assert fresh_cache.stats.stage_hits.get("evaluate", 0) >= 1

    def test_compile_action(self, fresh_cache):
        result = api.compile(_req(action="compile"))
        assert result.spatial_loc > 10
        assert result.input_loc > 0
        assert "SpMV" in result.source or "x(i)" in result.source
        assert result.seconds is None
        with pytest.raises(ValueError, match="platform times"):
            result.platform_times()

    def test_execute_dispatches_on_action(self, fresh_cache):
        assert api.execute(_req()).seconds is not None
        assert api.execute(_req(action="compile")).source is not None


class TestDeprecatedShims:
    def test_old_surface_warns_once_and_matches(self, fresh_cache,
                                                monkeypatch):
        from repro.eval import harness

        monkeypatch.setattr(harness, "_DEPRECATED_SEEN", set())
        with pytest.deprecated_call():
            times = harness.evaluate("SpMV", "bcsstk30", TINY)
        assert times.seconds == api.evaluate(_req()).platform_times().seconds

        # Second call: the warning fires once per process.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            harness.evaluate("SpMV", "bcsstk30", TINY)

        monkeypatch.setattr(harness, "_DEPRECATED_SEEN", set())
        with pytest.deprecated_call():
            kernel = harness.build_kernel("SpMV", "bcsstk30", TINY)
        assert kernel.spatial_loc > 10


class TestStatsPayload:
    def test_shared_formatter_shape(self, fresh_cache):
        api.evaluate(_req())
        payload = cache_stats_payload()
        assert set(payload) == {"compiler", "disk", "counters", "metrics"}
        assert set(payload["disk"]) == {"dir", "entries", "bytes"}
        assert set(payload["metrics"]) == {"counters", "gauges", "histograms"}
        counters = payload["counters"]
        assert counters["misses"] > 0
        assert "evaluate" in counters["stages"]
        rendered = json.loads(render_cache_stats())
        assert set(rendered) == set(payload)


def test_public_api_surface():
    for name in api.__all__:
        assert hasattr(api, name), name
    # The package root re-exports the request/result types.
    import repro

    assert repro.CompileRequest is api.CompileRequest
    assert repro.CompileResult is api.CompileResult
    assert repro.ENGINES is api.ENGINES
