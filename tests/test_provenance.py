"""Unit tests for index-variable provenance (split/fuse bounds)."""

import pytest

from repro.ir import index_vars
from repro.ir.cin import FuseRel, SplitDown, SplitUp
from repro.schedule.provenance import Provenance


@pytest.fixture
def vars6():
    return index_vars("i io ii j f k")


class TestRoots:
    def test_underived_is_its_own_root(self, vars6):
        i, *_ = vars6
        prov = Provenance()
        assert prov.roots(i) == (i,)
        assert not prov.is_derived(i)

    def test_split_roots(self, vars6):
        i, io, ii, *_ = vars6
        prov = Provenance([SplitUp(i, io, ii, 4)])
        assert prov.roots(io) == (i,)
        assert prov.roots(ii) == (i,)
        assert prov.is_derived(io) and prov.is_derived(ii)

    def test_fuse_roots_pair(self, vars6):
        i, io, ii, j, f, k = vars6
        prov = Provenance([FuseRel(i, j, f)])
        assert prov.roots(f) == (i, j)

    def test_chained_derivation(self, vars6):
        i, io, ii, j, f, k = vars6
        prov = Provenance([SplitUp(i, io, ii, 4), FuseRel(io, ii, f)])
        assert prov.roots(f) == (i, i)


class TestTripCounts:
    def test_split_up_counts(self, vars6):
        i, io, ii, *_ = vars6
        prov = Provenance([SplitUp(i, io, ii, 4)])
        dims = {id(i): 10}
        assert prov.trip_count(io, dims) == 3  # ceil(10/4)
        assert prov.trip_count(ii, dims) == 4

    def test_split_down_counts(self, vars6):
        i, io, ii, *_ = vars6
        prov = Provenance([SplitDown(i, io, ii, 4)])
        dims = {id(i): 10}
        assert prov.trip_count(io, dims) == 4
        assert prov.trip_count(ii, dims) == 3

    def test_fuse_counts_multiply(self, vars6):
        i, io, ii, j, f, k = vars6
        prov = Provenance([FuseRel(i, j, f)])
        dims = {id(i): 3, id(j): 5}
        assert prov.trip_count(f, dims) == 15

    def test_root_count_from_dims(self, vars6):
        i, *_ = vars6
        prov = Provenance()
        assert prov.trip_count(i, {id(i): 7}) == 7

    def test_missing_dim_raises(self, vars6):
        i, *_ = vars6
        prov = Provenance()
        with pytest.raises(KeyError):
            prov.trip_count(i, {})

    def test_nested_split(self, vars6):
        i, io, ii, j, f, k = vars6
        prov = Provenance([SplitUp(i, io, ii, 4), SplitUp(io, j, k, 2)])
        dims = {id(i): 16}
        assert prov.trip_count(io, dims) == 4
        assert prov.trip_count(j, dims) == 2
        assert prov.trip_count(k, dims) == 2


class TestRecombine:
    def test_roles(self, vars6):
        i, io, ii, *_ = vars6
        prov = Provenance([SplitUp(i, io, ii, 4)])
        rel, role = prov.recombine(io)
        assert isinstance(rel, SplitUp) and role == "outer"
        rel, role = prov.recombine(ii)
        assert role == "inner"
        assert prov.recombine(i) is None
