"""End-to-end correctness: every Table 3 kernel through the full compiler
pipeline (schedule → memory analysis → lowering → Spatial interpretation)
against the dense reference semantics."""

import numpy as np
import pytest

from repro.core import compile_stmt
from repro.kernels import KERNEL_ORDER, KERNELS
from repro.tensor import evaluate_dense, to_dense
from tests.helpers_kernels import build_small_kernel_stmt

ALL_KERNELS = list(KERNEL_ORDER)


def run_kernel(name: str, seed: int = 42, density: float = 0.4):
    stmt, out, tensors = build_small_kernel_stmt(name, seed, density)
    kernel = compile_stmt(stmt, name.lower())
    result = to_dense(kernel.run())
    reference = evaluate_dense(out.get_assignment())
    return kernel, result, reference


@pytest.mark.parametrize("name", ALL_KERNELS)
def test_kernel_matches_dense_reference(name):
    _, result, reference = run_kernel(name)
    assert np.allclose(result, reference), f"{name} mismatch"


@pytest.mark.parametrize("name", ALL_KERNELS)
@pytest.mark.parametrize("seed", [1, 7, 123])
def test_kernel_across_seeds(name, seed):
    _, result, reference = run_kernel(name, seed=seed)
    assert np.allclose(result, reference)


@pytest.mark.parametrize("name", ALL_KERNELS)
@pytest.mark.parametrize("density", [0.05, 0.9])
def test_kernel_across_densities(name, density):
    _, result, reference = run_kernel(name, density=density)
    assert np.allclose(result, reference)


@pytest.mark.parametrize("name", ALL_KERNELS)
def test_kernel_on_empty_operands(name):
    """All-zero sparse inputs produce the correct (mostly zero) result."""
    _, result, reference = run_kernel(name, density=0.0)
    assert np.allclose(result, reference)


@pytest.mark.parametrize("name", ALL_KERNELS)
def test_kernel_fully_dense_operands(name):
    _, result, reference = run_kernel(name, density=1.0)
    assert np.allclose(result, reference)


@pytest.mark.parametrize("name", ["SpMV", "SDDMM", "TTV", "Plus3", "Plus2"])
@pytest.mark.parametrize("outer_par", [1, 4])
def test_parallelization_does_not_change_results(name, outer_par):
    stmt, out, _ = build_small_kernel_stmt(name, outer_par=outer_par)
    kernel = compile_stmt(stmt, name.lower())
    result = to_dense(kernel.run())
    assert np.allclose(result, evaluate_dense(out.get_assignment()))


class TestGeneratedCodeShape:
    """Structural anchors tying generated code to Figure 11."""

    def test_sddmm_matches_figure11_shape(self):
        stmt, _, _ = build_small_kernel_stmt("SDDMM")
        src = compile_stmt(stmt, "sddmm").source
        assert "Accel {" in src
        assert "B2_pos load B2_pos_dram" in src
        assert "val j = B2_crd.deq" in src
        assert "val B_hoisted = B_vals.deq" in src
        assert "Reduce(ws_reg)" in src
        assert "A_vals_dram stream_store_vec" in src
        assert "C_vals load C_vals_dram" in src
        assert "D_vals load D_vals_dram" in src

    def test_spmv_uses_reduce_pattern(self):
        stmt, _, _ = build_small_kernel_stmt("SpMV")
        src = compile_stmt(stmt, "spmv").source
        assert "Reduce(" in src
        assert "x_vals = SparseSRAM" in src  # gathered through shuffle

    def test_plus3_uses_bitvector_scans(self):
        stmt, _, _ = build_small_kernel_stmt("Plus3")
        src = compile_stmt(stmt, "plus3").source
        assert "genBitvector" in src
        assert "Scan(" in src
        assert "op=or" in src

    def test_innerprod_uses_and_scan(self):
        stmt, _, _ = build_small_kernel_stmt("InnerProd")
        src = compile_stmt(stmt, "innerprod").source
        assert "op=and" in src

    def test_environment_emitted_globally(self):
        stmt, _, _ = build_small_kernel_stmt("SpMV")
        src = compile_stmt(stmt, "spmv").source
        head = src.split("Accel")[0]
        assert "val innerPar = 16" in head
        assert "val outerPar = 16" in head

    def test_loc_within_2x_of_paper(self):
        """Generated Spatial LoC lands in the same band as Table 3."""
        for name in ALL_KERNELS:
            stmt, _, _ = build_small_kernel_stmt(name)
            kernel = compile_stmt(stmt, name.lower())
            paper = KERNELS[name].paper_spatial_loc
            assert paper / 2 <= kernel.spatial_loc <= paper * 2, name


class TestOutputFormats:
    def test_sddmm_output_structure_mirrors_b(self):
        stmt, out, tensors = build_small_kernel_stmt("SDDMM")
        kernel = compile_stmt(stmt, "sddmm")
        storage = kernel.run()
        b_storage = tensors["B"].storage
        assert storage.levels[1].crd.tolist() == b_storage.levels[1].crd.tolist()
        assert storage.levels[1].pos.tolist() == b_storage.levels[1].pos.tolist()

    def test_plus3_output_structure_is_union(self):
        stmt, out, tensors = build_small_kernel_stmt("Plus3", density=0.3)
        kernel = compile_stmt(stmt, "plus3")
        storage = kernel.run()
        expected = (
            (tensors["B"].to_dense() != 0)
            | (tensors["C"].to_dense() != 0)
            | (tensors["D"].to_dense() != 0)
        )
        assert storage.levels[1].pos[-1] == expected.sum()

    def test_innerprod_scalar_result(self):
        stmt, out, tensors = build_small_kernel_stmt("InnerProd")
        kernel = compile_stmt(stmt, "innerprod")
        value = float(kernel.run().vals[0])
        expected = float(
            (tensors["B"].to_dense() * tensors["C"].to_dense()).sum()
        )
        assert np.isclose(value, expected)

    def test_run_with_override(self):
        stmt, out, tensors = build_small_kernel_stmt("SpMV")
        kernel = compile_stmt(stmt, "spmv")
        new_x = tensors["x"].copy_structure("x")
        new_x.from_dense(np.ones(tensors["x"].shape))
        result = to_dense(kernel.run(x=new_x))
        expected = tensors["A"].to_dense() @ np.ones(tensors["x"].shape)
        assert np.allclose(result, expected)

    def test_run_with_unknown_override_rejected(self):
        stmt, _, _ = build_small_kernel_stmt("SpMV")
        kernel = compile_stmt(stmt, "spmv")
        with pytest.raises(KeyError):
            kernel.run(nosuch=None)
