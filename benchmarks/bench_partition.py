"""Distributed single-kernel scaling: partition blocks vs worker count.

Measures, for the partitionable kernels (``repro.pipeline.partition``)
on the bench dataset, the cost of row-blocking one kernel into P
independent sub-kernels and reducing the partials back: per-P wall
clocks for the slice, compute, and reduce phases, the end-to-end
speedup over the unpartitioned serial run, and — the gated invariants —
whether the reducing merge is byte-identical to serial (``merge_exact``)
and whether the blocks cover exactly the full operand's nonzeros
(``work_inflation``). Wall clocks are context only; CI's perf gate
(``scripts/check_bench_regression.py``) enforces just the two
deterministic invariants, which cannot flake on shared runners.

Runs as a pytest suite or standalone for CI's smoke configuration::

    python -m benchmarks.bench_partition --scale 0.05
"""

from __future__ import annotations

import time

#: Measurement scale: small enough for a per-PR smoke run; the gated
#: invariants (byte-identity, work conservation) are scale-independent.
SMOKE_SCALE = 0.05

#: The dataset the numbers are taken on (matrix kernels only).
BENCH_DATASET = "bcsstk30"

#: Worker/block counts on the scaling curve.
BENCH_COUNTS = (1, 2, 4)


def _phase_times(plan, scale: float) -> dict:
    """Slice/compute/reduce wall clocks for one plan, cache-cold."""
    from repro.convert import slice_rows
    from repro.pipeline.executor import run_jobs
    from repro.pipeline.partition import (
        _full_storage,
        block_range,
        format_partition,
        reduce_partials,
    )

    full = _full_storage(plan, scale, use_cache=False)

    t0 = time.perf_counter()
    sliced_nnz = 0
    for index in range(plan.count):
        lo, hi = block_range(full.dims[0], plan.count, index)
        sliced_nnz += int(slice_rows(full, lo, hi).nnz)
    slice_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    results = run_jobs(plan.jobs(scale, use_cache=False),
                       max_workers=plan.count)
    compute_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    data = reduce_partials(plan.artifact, results)
    reduce_s = time.perf_counter() - t0

    return {
        "slice_s": slice_s,
        "compute_s": compute_s,
        "reduce_s": reduce_s,
        "total_s": slice_s + compute_s + reduce_s,
        "work_inflation": sliced_nnz / int(full.nnz) if full.nnz else 1.0,
        "text": format_partition(data),
    }


def collect_metrics(scale: float = SMOKE_SCALE) -> dict:
    """Scaling curve per kernel: one entry per block count P.

    Returns the metrics dict for ``BENCH_partition.json``: under each
    kernel, ``p<P>`` entries with phase wall clocks, ``merge_exact``
    (the reduced report byte-equals the serial one), ``work_inflation``
    (sliced nonzeros over full nonzeros; 1.0 means no lost or
    duplicated work), and ``speedup`` over the serial run.
    """
    from repro.pipeline.partition import (
        PARTITION_FORMATS,
        PartitionPlan,
        serial_report,
    )

    metrics: dict[str, dict] = {}
    all_exact = True
    for kernel in sorted(PARTITION_FORMATS):
        t0 = time.perf_counter()
        serial = serial_report(kernel, BENCH_DATASET, scale,
                               use_cache=False)
        serial_s = time.perf_counter() - t0

        entry: dict[str, dict | float] = {"serial_s": serial_s}
        for count in BENCH_COUNTS:
            plan = PartitionPlan(kernel, BENCH_DATASET, count)
            timed = _phase_times(plan, scale)
            exact = timed.pop("text") == serial
            all_exact = all_exact and exact
            entry[f"p{count}"] = {
                **timed,
                "merge_exact": exact,
                "speedup": serial_s / timed["total_s"]
                if timed["total_s"] else 0.0,
            }
        metrics[kernel] = entry
    metrics["summary"] = {
        "merge_exact_all": all_exact,
        "counts": list(BENCH_COUNTS),
        "dataset": BENCH_DATASET,
    }
    return metrics


def run_smoke(scale: float = SMOKE_SCALE) -> dict:
    """Collect the metrics and write ``BENCH_partition.json``."""
    from benchmarks.bench_utils import write_bench_json

    metrics = collect_metrics(scale)
    path = write_bench_json("partition", metrics, scale=scale)
    print(f"wrote {path}")
    return metrics


def test_partition_merge_invariants():
    """Acceptance: byte-identical merges, no lost or duplicated work."""
    metrics = run_smoke()
    assert metrics["summary"]["merge_exact_all"]
    for kernel, entry in metrics.items():
        if kernel == "summary":
            continue
        for key, timed in entry.items():
            if not isinstance(timed, dict):
                continue
            assert timed["merge_exact"], f"{kernel} {key} not byte-exact"
            assert timed["work_inflation"] == 1.0, (
                f"{kernel} {key}: work inflation {timed['work_inflation']}")


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Single-kernel partition scaling smoke benchmark")
    parser.add_argument("--scale", type=float, default=SMOKE_SCALE)
    args = parser.parse_args(argv)
    metrics = run_smoke(args.scale)
    ok = True
    for kernel, entry in sorted(metrics.items()):
        if kernel == "summary":
            continue
        print(f"{kernel}: serial {entry['serial_s'] * 1e3:7.1f}ms")
        for key in sorted(k for k in entry if k.startswith("p")):
            timed = entry[key]
            ok = ok and timed["merge_exact"] and (
                timed["work_inflation"] == 1.0)
            print(f"  {key:4s} slice={timed['slice_s'] * 1e3:7.1f}ms "
                  f"compute={timed['compute_s'] * 1e3:7.1f}ms "
                  f"reduce={timed['reduce_s'] * 1e3:7.1f}ms "
                  f"speedup={timed['speedup']:5.2f}x "
                  f"exact={timed['merge_exact']} "
                  f"inflation={timed['work_inflation']:.3f}")
    print(f"merge_exact_all={metrics['summary']['merge_exact_all']}")
    return 0 if ok and metrics["summary"]["merge_exact_all"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
