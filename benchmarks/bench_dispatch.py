"""Dispatcher overhead and fault-recovery cost.

Two properties of the fault-tolerant dispatcher worth tracking:

* **Scheduling overhead** — dynamic chunked leases over in-process
  workers should cost little more than running the same shard slices
  directly: the lease/poll/validate/merge layer must stay negligible
  next to compilation and simulation.
* **Fault recovery** — a worker dying mid-lease costs one chunk re-run,
  served almost entirely from the staged cache; recovery should
  therefore cost a small fraction of the clean dispatch, not a rerun of
  the whole sweep.
"""

from __future__ import annotations

import time

from benchmarks.conftest import TINY

from repro.pipeline.dispatch import (
    ChunkRequest,
    InlineTransport,
    LocalTransport,
    dispatch,
)
from repro.pipeline.shard import ShardSpec, merge_manifests, run_shard


def test_dispatch_vs_direct_shards(benchmark, report, tmp_path,
                                   fresh_default_cache):
    """Inline dispatch against the same chunks run directly."""
    fresh_default_cache(tmp_path / "direct")
    t0 = time.perf_counter()
    manifests = [run_shard("table3", TINY, ShardSpec(i, 4))
                 for i in range(1, 5)]
    direct_merged = merge_manifests(manifests)
    direct_s = time.perf_counter() - t0

    fresh_default_cache(tmp_path / "dispatched")
    t0 = time.perf_counter()
    result = dispatch("table3", TINY, InlineTransport(1))
    dispatch_s = time.perf_counter() - t0
    assert result.ok and result.chunks == 4

    benchmark.pedantic(
        dispatch, args=("table3", TINY, InlineTransport(1)),
        rounds=3, iterations=1,
    )

    report(
        f"dispatch overhead (table3, scale {TINY}, 4 chunks)",
        f"direct shards + merge {direct_s * 1e3:9.1f} ms\n"
        f"dispatched (inline:1) {dispatch_s * 1e3:9.1f} ms "
        f"({dispatch_s / direct_s:5.2f}x direct)",
    )
    assert result.merged.text == direct_merged.text


def test_fault_recovery_cost(benchmark, report, tmp_path,
                             fresh_default_cache):
    """A worker killed mid-lease: recovery rides the staged cache."""
    import sys

    class DieOnce(LocalTransport):
        def __init__(self) -> None:
            super().__init__(2)
            self.armed = True

        def argv(self, request: ChunkRequest) -> list[str]:
            if self.armed:
                self.armed = False
                return [sys.executable, "-c", "import sys; sys.exit(9)"]
            return super().argv(request)

    fresh_default_cache(tmp_path)
    t0 = time.perf_counter()
    clean = dispatch("table3", TINY, LocalTransport(2), chunks_per_worker=2)
    clean_s = time.perf_counter() - t0
    assert clean.ok

    t0 = time.perf_counter()
    faulted = dispatch("table3", TINY, DieOnce(), chunks_per_worker=2)
    faulted_s = time.perf_counter() - t0
    assert faulted.ok
    assert faulted.attempts == faulted.chunks + 1

    benchmark.pedantic(
        dispatch, args=("table3", TINY, LocalTransport(2)),
        kwargs={"chunks_per_worker": 2}, rounds=3, iterations=1,
    )

    report(
        f"dispatch fault recovery (table3, scale {TINY}, local:2)",
        f"clean dispatch (cold)   {clean_s * 1e3:9.1f} ms\n"
        f"1 worker killed (warm)  {faulted_s * 1e3:9.1f} ms "
        f"({faulted_s / clean_s:5.2f}x clean; "
        f"{faulted.attempts} leases for {faulted.chunks} chunks)",
    )
    assert faulted.merged.text == clean.merged.text
