"""Machine-readable benchmark output: one helper, one schema.

Every benchmark writes its numbers through :func:`write_bench_json`, so
CI's perf gate and the nightly sweep consume a uniform format::

    {
      "schema": 1,
      "bench": "<name>",           # BENCH_<name>.json
      "scale": 0.05,               # dataset scale the numbers were taken at
      "unix_time": 1754555555.0,
      "provenance": { "git_sha": ..., "hostname": ...,
                      "python_version": ..., "numpy_version": ... },
      "metrics": { "<metric>": <number> | {<sub-metric>: <number>} }
    }

Files land in ``REPRO_BENCH_DIR`` (default: the current directory) as
``BENCH_<name>.json``. The pytest-benchmark suites are routed through
this automatically by a session-finish hook in ``conftest.py``; scripts
with bespoke metrics (``bench_numpy_exec.py``) call it directly.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import time
from pathlib import Path

SCHEMA_VERSION = 1


def bench_dir() -> Path:
    """Where BENCH_*.json files are written (``REPRO_BENCH_DIR``)."""
    return Path(os.environ.get("REPRO_BENCH_DIR", "."))


def _git_sha() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=Path(__file__).parent,
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def provenance() -> dict:
    """Where/when/what the numbers came from, for cross-run comparison."""
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dep today
        numpy_version = None
    return {
        "git_sha": _git_sha(),
        "hostname": socket.gethostname(),
        "python_version": platform.python_version(),
        "numpy_version": numpy_version,
    }


def write_bench_json(name: str, metrics: dict, scale: float | None = None,
                     extra: dict | None = None) -> Path:
    """Write ``BENCH_<name>.json`` with the uniform schema; returns the path.

    ``metrics`` maps metric names to numbers (or flat sub-dicts of
    numbers). ``extra`` merges additional top-level fields (e.g. an
    ``engine`` tag) without disturbing the schema keys.
    """
    payload: dict = {
        "schema": SCHEMA_VERSION,
        "bench": name,
        "scale": scale,
        "unix_time": time.time(),
        "provenance": provenance(),
        "metrics": metrics,
    }
    if extra:
        for key, value in extra.items():
            payload.setdefault(key, value)
    out = bench_dir() / f"BENCH_{name}.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return out


def pytest_benchmarks_to_metrics(benchmarks) -> dict[str, dict[str, float]]:
    """Fold pytest-benchmark result objects into the metrics schema.

    Used by the conftest session hook to emit one ``BENCH_<module>.json``
    per benchmark module, keyed by test name with mean/min wall seconds.
    """
    metrics: dict[str, dict[str, float]] = {}
    for bench in benchmarks:
        stats = bench.stats.stats if hasattr(bench.stats, "stats") else bench.stats
        metrics[bench.name] = {
            "mean_s": float(stats.mean),
            "min_s": float(stats.min),
            "rounds": float(stats.rounds),
        }
    return metrics
