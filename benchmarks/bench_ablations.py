"""Ablation studies for the design choices the paper discusses.

Not a table or figure of the paper, but direct quantifications of two of
its claims:

* **Density sensitivity of bit-vector co-iteration** (Section 8.1):
  "Capstan's bit-vector format does not natively support performant
  co-iteration on highly sparse (less than about 5%) tensors" — which is
  why Plus3/InnerProd/Plus2 use denser random datasets. The ablation
  sweeps density for InnerProd and reports scanner work *per output
  element*: below a few percent, almost all scanned bit-vector words are
  empty and the cost per useful element explodes.

* **Vector duplication vs the shuffle network** (Section 8.3): the
  handwritten Capstan SpMV duplicates the input vector to avoid shuffle
  contention and the 16-partition cap. The ablation compares the compiled
  (shuffle) and duplicated (handwritten-model) strategies across the three
  SuiteSparse substitutes.
"""



from repro.backends.handwritten import HandwrittenCapstanSpMV
from repro.capstan import HBM2E, CapstanSimulator, compute_stats
from repro.core import compile_stmt
from repro.data import datasets_for, load
from repro.kernels import KERNELS
from tests.helpers_kernels import make_small_tensors

DENSITIES = (0.01, 0.02, 0.05, 0.10, 0.25, 0.50)


def _innerprod_scan_efficiency(density: float):
    dims = {"alpha_out": (), "B": (32, 64, 64), "C": (32, 64, 64)}
    tensors = make_small_tensors("InnerProd", seed=5, density=density,
                                 dims=dims)
    stmt, _ = KERNELS["InnerProd"].build(tensors)
    kernel = compile_stmt(stmt, "innerprod", cache=False)
    stats = compute_stats(kernel)
    useful = max(1, stats.loop("k").iters)
    words_per_output = stats.total_scan_words / useful
    return words_per_output, stats


def test_density_sensitivity_of_bitvector_scans(benchmark, report):
    """Section 8.1 claim: bit-vector co-iteration degrades below ~5%."""

    def sweep():
        return {d: _innerprod_scan_efficiency(d)[0] for d in DENSITIES}

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [f"{'density':>10s}{'scan words / useful element':>30s}"]
    for d, w in series.items():
        rows.append(f"{d:10.2%}{w:30.2f}")
    report("Ablation A1 — bit-vector scan efficiency vs density",
                   "\n".join(rows))
    # The paper's threshold: an order of magnitude more scanner work per
    # useful element at 1% than at 50%.
    assert series[0.01] > 10 * series[0.50]
    # And the curve is monotone: denser data uses the scanners better.
    values = list(series.values())
    assert values == sorted(values, reverse=True)


def test_shuffle_vs_duplication(benchmark, report):
    """Section 8.3: duplicating x beats coordinating through the shuffle
    network, at the cost of on-chip memory (one x copy per partition)."""

    def compare():
        out = {}
        for dspec in datasets_for("SpMV"):
            tensors = load("SpMV", dspec.name, scale=0.25)
            stmt, _ = KERNELS["SpMV"].build(tensors)
            kernel = compile_stmt(stmt, "spmv", cache=False)
            stats = compute_stats(kernel)
            compiled = CapstanSimulator().simulate(
                kernel, dram=HBM2E, stats=stats
            ).seconds
            duplicated = HandwrittenCapstanSpMV().predict_seconds(stats, HBM2E)
            out[dspec.name] = (compiled, duplicated)
        return out

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    rows = [f"{'dataset':>18s}{'shuffle (us)':>14s}{'duplicated (us)':>17s}"
            f"{'ratio':>8s}"]
    for name, (c, d) in results.items():
        rows.append(f"{name:>18s}{c * 1e6:14.2f}{d * 1e6:17.2f}{d / c:8.2f}")
    report("Ablation A2 — shuffle network vs vector duplication",
                   "\n".join(rows))
    for name, (compiled, duplicated) in results.items():
        assert duplicated <= compiled, name
