"""Fused expression pipelines vs the unfused (materialize-all) baseline.

Measures, per registered pipeline (``repro.pipeline.fusion``) on one
bench dataset, the modeled DRAM traffic of the fused run against the
``fuse=False`` baseline — the headline FuseFlow number: bytes of the
producer→consumer intermediate that never round-trip through DRAM —
plus wall-clock times for both runs as context. Emits
``BENCH_pipeline.json`` through the shared :mod:`benchmarks.bench_utils`
schema; CI's perf job checks the best reduction against the committed
``benchmarks/baseline.json`` floor (``min_best_reduction_pct``, exact:
the traffic model is deterministic, no wall clocks involved).

Runs as a pytest suite (enforcing the ≥30% acceptance bar) or
standalone for CI's smoke configuration::

    python -m benchmarks.bench_pipeline --scale 0.05
"""

from __future__ import annotations

import time

#: Measurement scale: small enough for a per-PR smoke run; the traffic
#: reduction is scale-stable (it is a bytes-per-nonzero ratio).
SMOKE_SCALE = 0.05

#: The dataset the bench numbers are taken on — the densest synthetic
#: matrix, where the intermediate's traffic share is most pronounced.
BENCH_DATASET = "random-50pct"


def collect_metrics(scale: float = SMOKE_SCALE) -> dict:
    """Per-pipeline fused-vs-unfused traffic and wall time.

    Returns the metrics dict for ``BENCH_pipeline.json``: one entry per
    registered pipeline plus a ``best`` summary holding the largest
    traffic reduction. Fused and unfused outputs are compared
    checksum-for-checksum before a pipeline's numbers count — fusion
    that changes results is a failure, not a data point.
    """
    from repro.pipeline.fusion import PIPELINE_ORDER, run_pipeline

    metrics: dict[str, dict | float] = {}
    best: dict | None = None
    for name in PIPELINE_ORDER:
        t0 = time.perf_counter()
        fused = run_pipeline(name, BENCH_DATASET, scale, fuse=True,
                             use_cache=False)
        fused_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        unfused = run_pipeline(name, BENCH_DATASET, scale, fuse=False,
                               use_cache=False)
        unfused_s = time.perf_counter() - t0
        if fused["outputs"] != unfused["outputs"]:
            raise AssertionError(
                f"fused pipeline {name} disagrees with the unfused "
                f"baseline on {BENCH_DATASET}"
            )
        entry = {
            "dataset": BENCH_DATASET,
            "reduction_pct": fused["reduction_pct"],
            "unfused_mib": unfused["unfused_bytes"] / 2**20,
            "fused_mib": fused["fused_bytes"] / 2**20,
            "streams": sum(d["streamed"] for d in fused["decisions"]),
            "cuts": sum(not d["streamed"] for d in fused["decisions"]),
            "fused_s": fused_s,
            "unfused_s": unfused_s,
        }
        metrics[name] = entry
        if best is None or entry["reduction_pct"] > best["reduction_pct"]:
            best = {"pipeline": name,
                    "reduction_pct": entry["reduction_pct"]}
    metrics["best"] = best or {}
    return metrics


def run_smoke(scale: float = SMOKE_SCALE) -> dict:
    """Collect the metrics and write ``BENCH_pipeline.json``."""
    from benchmarks.bench_utils import write_bench_json

    metrics = collect_metrics(scale)
    path = write_bench_json("pipeline", metrics, scale=scale)
    print(f"wrote {path}")
    return metrics


def test_pipeline_traffic_reduction():
    """Acceptance: ≥30% modeled traffic saved on at least one pipeline."""
    metrics = run_smoke()
    for name, entry in metrics.items():
        if isinstance(entry, dict) and name != "best":
            print(f"{name:12s} {entry['reduction_pct']:7.2f}% saved "
                  f"({entry['streams']} stream(s), {entry['cuts']} cut(s))")
    assert metrics["best"]["reduction_pct"] >= 30.0


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Fused pipeline traffic-reduction smoke benchmark")
    parser.add_argument("--scale", type=float, default=SMOKE_SCALE)
    parser.add_argument("--min-reduction", type=float, default=30.0,
                        help="fail below this best-case traffic "
                             "reduction percentage (default 30)")
    args = parser.parse_args(argv)
    metrics = run_smoke(args.scale)
    for name, entry in metrics.items():
        if not isinstance(entry, dict) or name == "best":
            continue
        print(f"{name:12s} {entry['unfused_mib']:8.3f} MiB -> "
              f"{entry['fused_mib']:8.3f} MiB "
              f"({entry['reduction_pct']:6.2f}% saved)  "
              f"fused={entry['fused_s'] * 1e3:7.1f}ms "
              f"unfused={entry['unfused_s'] * 1e3:7.1f}ms")
    best = metrics["best"]
    print(f"best: {best['pipeline']} at {best['reduction_pct']:.2f}% "
          f"(floor {args.min_reduction}%)")
    return 0 if best["reduction_pct"] >= args.min_reduction else 1


if __name__ == "__main__":
    raise SystemExit(main())
