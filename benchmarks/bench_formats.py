"""Format subsystem benchmarks: conversion staging and per-format kernels.

Two questions the format abstraction subsystem raises:

* how expensive is format conversion, and how much does the staged
  ``convert`` cache buy a sweep that needs the same matrix in several
  formats (cold synthesis vs staged replay); and
* what does each whole-tensor format cost at kernel level — the
  format_sweep artefact's per-format compile + simulate path.
"""

from __future__ import annotations

import time

from repro.convert import convert, staged_matrix_storage
from repro.data.datasets import load_matrix_coo
from repro.formats import CSR, format_of, offChip
from repro.tensor.storage import pack

#: Matrix dataset used for the conversion benches.
DATASET = "Trefethen_20000"

#: Dataset scale for the conversion benches (conversion cost is linear in
#: nnz, so a modest scale tracks the trend without minutes of runtime).
CONV_SCALE = 0.25

#: Formats the staging bench sweeps (the format_sweep operand formats).
FORMATS = ("coo", "dcsr", "bcsr")


def test_cold_vs_staged_conversion(benchmark, report, tmp_path,
                                   fresh_default_cache):
    """Cold plan synthesis + execution vs staged-cache replay per format."""
    fresh_default_cache(tmp_path)

    dims, coords, vals = load_matrix_coo(DATASET, CONV_SCALE, 7)
    base = pack(coords, vals, dims, CSR(offChip))

    cold: dict[str, float] = {}
    for name in FORMATS:
        t0 = time.perf_counter()
        convert(base, format_of(name))
        cold[name] = time.perf_counter() - t0

    # First staged call converts and stores; the second replays the cache.
    for name in FORMATS:
        staged_matrix_storage(DATASET, CONV_SCALE, 7, name)
    staged: dict[str, float] = {}
    for name in FORMATS:
        t0 = time.perf_counter()
        staged_matrix_storage(DATASET, CONV_SCALE, 7, name)
        staged[name] = time.perf_counter() - t0

    benchmark.pedantic(
        staged_matrix_storage, args=(DATASET, CONV_SCALE, 7, "coo"),
        rounds=3, iterations=1,
    )

    lines = [f"{'format':8s}{'cold':>12s}{'staged':>12s}{'speedup':>9s}"]
    for name in FORMATS:
        ratio = cold[name] / staged[name] if staged[name] else float("inf")
        lines.append(
            f"{name:8s}{cold[name] * 1e3:10.2f}ms"
            f"{staged[name] * 1e3:10.2f}ms{ratio:8.1f}x"
        )
    report(
        f"conversion staging ({DATASET}, scale {CONV_SCALE}, nnz={base.nnz})",
        "\n".join(lines),
    )
    for name in FORMATS:
        assert staged[name] <= cold[name] * 5  # replay never regresses much


def test_per_format_kernel_throughput(benchmark, report, tmp_path,
                                      fresh_default_cache):
    """The format_sweep cells: per-format compile + simulate cost and the
    predicted kernel runtime each format achieves."""
    from repro.eval.harness import FORMAT_SWEEP_KERNELS
    from repro.pipeline.batch import format_sweep_cell

    fresh_default_cache(tmp_path)
    scale = 0.05
    dataset = "Trefethen_20000"

    rows = []
    for kernel in FORMAT_SWEEP_KERNELS:
        t0 = time.perf_counter()
        cell = format_sweep_cell(kernel, dataset, scale)
        build = time.perf_counter() - t0
        rows.append((kernel, cell, build))

    benchmark.pedantic(
        format_sweep_cell, args=("SpMV", dataset, scale),
        rounds=3, iterations=1,
    )

    lines = [f"{'kernel':12s}{'nnz':>9s}{'KiB':>9s}{'us':>10s}{'build':>10s}"]
    for kernel, cell, build in rows:
        lines.append(
            f"{kernel:12s}{cell['nnz']:9d}"
            f"{cell['storage_bytes'] / 1024:9.1f}"
            f"{cell['seconds'] * 1e6:10.2f}{build * 1e3:8.1f}ms"
        )
    report(f"per-format kernel cost ({dataset}, scale {scale})",
           "\n".join(lines))
    assert all(cell["seconds"] > 0 for _, cell, _ in rows)
