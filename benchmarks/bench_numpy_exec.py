"""NumPy execution backend vs the Spatial interpreter (and scipy.sparse).

Measures, per Table 6 kernel on its first dataset, how much faster the
vectorized ``repro.backends.numpy_exec`` engine executes the kernel than
the Spatial interpreter, and — where the kernel maps onto a
``scipy.sparse`` one-liner (SpMV, Residual, MatTransMul) — how it
compares against that external yardstick. Emits ``BENCH_numpy_exec.json``
through the shared :mod:`benchmarks.bench_utils` schema; CI's perf job
checks the numbers against the committed ``benchmarks/baseline.json``
floors (see ``scripts/check_bench_regression.py``).

Runs as a pytest suite (enforcing the ≥10x geomean acceptance bar) or
standalone for CI's smoke configuration::

    python -m benchmarks.bench_numpy_exec --scale 0.05
"""

from __future__ import annotations

import time
from statistics import geometric_mean

import numpy as np

#: Measurement scale: small enough for a per-PR smoke run, large enough
#: that interpreter time dominates Python call overhead.
SMOKE_SCALE = 0.05

#: Best-of repetitions for the (fast) numpy and scipy measurements; the
#: interpreter runs once per kernel — it is the slow side being measured.
REPEATS = 3


def _scipy_model(kernel_name: str, kernel):
    """A scipy.sparse thunk equivalent to the kernel, or ``None``.

    Only kernels whose sparse operand is a 2-D matrix with a scipy
    counterpart expression map; the tensor kernels have no scipy
    analogue.
    """
    try:
        import scipy.sparse  # noqa: F401
    except ImportError:  # pragma: no cover - scipy is a baked-in dep
        return None
    tensors = kernel.tensors
    if kernel_name == "SpMV":
        A = tensors["A"].to_scipy()
        x = tensors["x"].to_dense()
        return lambda: A @ x
    if kernel_name == "Residual":
        A = tensors["A"].to_scipy()
        x = tensors["x"].to_dense()
        b = tensors["b"].to_dense()
        return lambda: b - A @ x
    if kernel_name == "MatTransMul":
        A = tensors["A"].to_scipy()
        x = tensors["x"].to_dense()
        z = tensors["z"].to_dense()
        alpha = tensors["alpha"].scalar_value()
        beta = tensors["beta"].scalar_value()
        return lambda: alpha * (A.T @ x) + beta * z
    return None


def _best_of(fn, repeats: int = REPEATS) -> tuple[float, object]:
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def collect_speedups(scale: float = SMOKE_SCALE,
                     repeats: int = REPEATS) -> dict:
    """Per-kernel interpreter/numpy/scipy timings and speedups.

    Returns the metrics dict for ``BENCH_numpy_exec.json``: one entry per
    Table 6 kernel plus a ``geomean_speedup`` summary. Each kernel's
    numpy result is checked against the interpreter's before its timing
    counts — a wrong fast engine is a failure, not a data point.
    """
    from repro.api import CompileRequest, build
    from repro.backends.numpy_exec import NumpyExecutor
    from repro.data.datasets import datasets_for
    from repro.kernels.suite import KERNEL_ORDER

    metrics: dict[str, dict | float] = {}
    speedups = []
    for kernel_name in KERNEL_ORDER:
        dataset = datasets_for(kernel_name)[0].name
        kernel = build(CompileRequest(kernel=kernel_name, dataset=dataset,
                                      scale=scale))
        t0 = time.perf_counter()
        reference = kernel.run_dense()
        interp_s = time.perf_counter() - t0
        numpy_s, got = _best_of(
            lambda: NumpyExecutor(kernel.stmt).run(strict=True), repeats)
        got = np.asarray(got, dtype=np.float64).reshape(reference.shape)
        magnitude = max(1.0, float(np.max(np.abs(reference))))
        if float(np.max(np.abs(got - reference))) > 1e-8 * magnitude:
            raise AssertionError(
                f"numpy engine disagrees with the interpreter on "
                f"{kernel_name}/{dataset}"
            )
        entry: dict[str, float | str] = {
            "dataset": dataset,
            "interp_s": interp_s,
            "numpy_s": numpy_s,
            "speedup": interp_s / numpy_s,
        }
        scipy_fn = _scipy_model(kernel_name, kernel)
        if scipy_fn is not None:
            scipy_s, _ = _best_of(scipy_fn, repeats)
            entry["scipy_s"] = scipy_s
            entry["numpy_vs_scipy"] = scipy_s / numpy_s
        metrics[kernel_name] = entry
        speedups.append(entry["speedup"])
    metrics["geomean_speedup"] = geometric_mean(speedups)
    return metrics


def run_smoke(scale: float = SMOKE_SCALE, repeats: int = REPEATS) -> dict:
    """Collect the metrics and write ``BENCH_numpy_exec.json``."""
    from benchmarks.bench_utils import write_bench_json

    metrics = collect_speedups(scale, repeats)
    path = write_bench_json("numpy_exec", metrics, scale=scale,
                            extra={"engine": "numpy"})
    print(f"wrote {path}")
    return metrics


def test_numpy_engine_speedup():
    """Acceptance: ≥10x geomean over the interpreter on Table 6 kernels."""
    metrics = run_smoke()
    for name, entry in metrics.items():
        if isinstance(entry, dict):
            print(f"{name:12s} {entry['speedup']:8.1f}x"
                  + (f"  (vs scipy {entry['numpy_vs_scipy']:.2f}x)"
                     if "numpy_vs_scipy" in entry else ""))
    assert metrics["geomean_speedup"] >= 10.0


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="NumPy engine speedup smoke benchmark")
    parser.add_argument("--scale", type=float, default=SMOKE_SCALE)
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument("--min-geomean", type=float, default=10.0,
                        help="fail below this geomean speedup (default 10)")
    args = parser.parse_args(argv)
    metrics = run_smoke(args.scale, args.repeats)
    for name, entry in metrics.items():
        if isinstance(entry, dict):
            scipy_note = (f"  scipy={entry['scipy_s'] * 1e3:7.2f}ms"
                          f" ({entry['numpy_vs_scipy']:.2f}x)"
                          if "scipy_s" in entry else "")
            print(f"{name:12s} interp={entry['interp_s'] * 1e3:8.1f}ms "
                  f"numpy={entry['numpy_s'] * 1e3:7.2f}ms "
                  f"{entry['speedup']:7.1f}x{scipy_note}")
    geomean = metrics["geomean_speedup"]
    print(f"geomean speedup: {geomean:.1f}x (floor {args.min_geomean}x)")
    return 0 if geomean >= args.min_geomean else 1


if __name__ == "__main__":
    raise SystemExit(main())
