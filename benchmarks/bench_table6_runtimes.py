"""Table 6 — normalised runtimes across platforms and memory systems.

Regenerates the headline evaluation: compiled Capstan under Ideal, HBM-2E,
and DDR4 memory; the handwritten Capstan and Plasticine SpMV rows; and the
TACO CPU/GPU baselines — normalised to compiled Capstan (HBM-2E) and
geomeaned across each kernel's Table 4 datasets.

Per-kernel benchmarks time the full evaluation pipeline (dataset load,
compile, statistics, all platform models) on the kernel's first dataset.
The table regeneration fans out through ``repro.pipeline`` (REPRO_JOBS
workers); measured calls bypass the cache so timings reflect real work.
"""

from statistics import geometric_mean

import pytest

from benchmarks.conftest import JOBS, SCALE
from repro.api import CompileRequest, evaluate
from repro.data import datasets_for
from repro.eval.harness import format_table6, table6
from repro.kernels import KERNEL_ORDER


@pytest.mark.parametrize("name", KERNEL_ORDER)
def test_evaluate_kernel(benchmark, name):
    """Benchmark: one kernel's full cross-platform evaluation."""
    dataset = datasets_for(name)[0].name
    request = CompileRequest(kernel=name, dataset=dataset, scale=SCALE)
    result = benchmark.pedantic(
        evaluate, args=(request,),
        kwargs={"use_cache": False}, rounds=1, iterations=1
    )
    times = result.platform_times()
    norm = times.normalised()
    assert norm["Capstan (HBM2E)"] == 1.0
    assert norm["Capstan (Ideal)"] <= 1.0
    assert norm["Capstan (DDR4)"] >= 1.0


def test_report_table6(benchmark, report):
    """Regenerate and print Table 6; assert the paper's headline shape."""
    results = benchmark.pedantic(
        table6, args=(SCALE,), kwargs={"jobs": JOBS, "use_cache": False},
        rounds=1, iterations=1)
    report(f"Table 6 (E3/E7), scale={SCALE}", format_table6(results))

    cpu = results["128-Thread CPU"]
    gpu = results["V100 GPU"]
    ddr = results["Capstan (DDR4)"]

    # Headline: Capstan beats CPU and GPU on (geomean over) every kernel.
    assert geometric_mean(list(cpu.values())) > 10
    assert geometric_mean(list(gpu.values())) > 5
    # DDR4 is slower than HBM2E everywhere; the gap shrinks for the
    # compute-bound kernels (InnerProd, Plus2), as in the paper.
    assert all(v >= 1.0 for v in ddr.values())
    assert ddr["Plus2"] < ddr["SpMV"]
    # GPU is much worse on sparse-output kernels (dense zero-init); the
    # gap widens with dataset scale (the dense result grows quadratically).
    assert gpu["SDDMM"] > 3 * gpu["SpMV"]
    assert gpu["TTM"] > 3 * gpu["MTTKRP"]
