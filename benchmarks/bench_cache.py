"""Cache effectiveness: cold vs warm Table 6 regeneration.

Quantifies the compilation cache's effect on the evaluation hot path so
the perf trajectory (BENCH_*.json) can track it: a cold run compiles and
simulates every (kernel, dataset) combination from scratch; a warm run
replays them from the content-addressed cache. Two warm flavours are
measured — in-memory LRU hits (same process) and disk-store hits (a
fresh process, modelled by a fresh cache instance over the same
directory), the path a repeated ``python -m repro tables table6`` CLI
invocation takes.
"""

from __future__ import annotations

import time

from repro.eval.harness import table6
from repro.pipeline import cache as cache_mod
from repro.pipeline.cache import CompilationCache

#: Matches the acceptance target: tables table6 --scale 0.1 warm ≥ 3×.
SCALE = 0.1


def test_cold_vs_warm_table6(benchmark, report, monkeypatch, tmp_path,
                             fresh_default_cache):
    """Cold compile-everything vs warm cache-replay wall time."""
    fresh_default_cache(tmp_path)

    t0 = time.perf_counter()
    cold_result = table6(SCALE)
    cold = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm_result = table6(SCALE)
    warm = time.perf_counter() - t0

    # A fresh cache instance over the same directory models a new process
    # (in-memory LRU empty, disk store warm): the CLI rerun path.
    monkeypatch.setattr(cache_mod, "_default_cache", CompilationCache())
    t0 = time.perf_counter()
    disk_result = table6(SCALE)
    disk = time.perf_counter() - t0

    # Record the warm (memory-hit) path in the benchmark json.
    benchmark.pedantic(table6, args=(SCALE,), rounds=1, iterations=1)

    report(
        f"cache effectiveness (table6, scale {SCALE})",
        f"cold       {cold * 1e3:9.1f} ms\n"
        f"warm (mem) {warm * 1e3:9.1f} ms  ({cold / warm:6.1f}x)\n"
        f"warm (disk){disk * 1e3:9.1f} ms  ({cold / disk:6.1f}x)",
    )
    assert warm_result == cold_result
    assert disk_result == cold_result
    # The acceptance bar is 3x for a full CLI rerun (which also pays
    # interpreter startup); in-process replay must clear it easily.
    assert cold / warm >= 3
    assert cold / disk >= 3
