"""Shared configuration for the evaluation benchmarks.

Dataset sizing: benchmarks default to REPRO_SCALE=0.25 (dimensions scaled
to a quarter, densities preserved) so the whole suite regenerates every
table and figure in a few minutes. Run with REPRO_SCALE=1.0 for the exact
Table 4 configurations (what EXPERIMENTS.md records).

Parallelism: the artefact regenerations fan out through
``repro.pipeline``; set REPRO_JOBS=N to spread the (kernel, dataset)
jobs over N workers. Measured calls bypass the compilation cache so the
recorded timings reflect real compilation/simulation work (see
``bench_cache.py`` for the cache-effectiveness benchmark).
"""

from __future__ import annotations

import os

import pytest

#: Dataset scale for the runtime benches.
SCALE = float(os.environ.get("REPRO_SCALE", "0.25"))

#: Worker count for pipeline fan-out in the artefact benches.
JOBS = max(1, int(os.environ.get("REPRO_JOBS", "1")))


@pytest.fixture(scope="session", autouse=True)
def _isolated_cache_dir(tmp_path_factory):
    """Hermetic benchmark runs: never read or pollute ~/.cache/repro.

    A warm disk store from a previous session would turn "cold" numbers
    into cache replays; a private per-session directory keeps every
    benchmark's first call genuinely cold.
    """
    if "REPRO_CACHE_DIR" not in os.environ:
        os.environ["REPRO_CACHE_DIR"] = str(
            tmp_path_factory.mktemp("repro-cache")
        )

#: Tiny scale for structural artefacts (LoC, resources) that do not depend
#: on dataset size.
TINY = 0.02


@pytest.fixture(scope="session")
def scale() -> float:
    return SCALE


@pytest.fixture
def fresh_default_cache(monkeypatch):
    """Factory swapping in a fresh default cache rooted under a path.

    Shared by the cache/shard/format benches so cold-vs-warm comparisons
    all isolate the process-wide cache the same way; call it once per
    simulated process/host: ``fresh_default_cache(tmp_path / "host1")``.
    """
    from repro.pipeline import cache as cache_mod
    from repro.pipeline.cache import CompilationCache

    def _make(path) -> CompilationCache:
        monkeypatch.setenv("REPRO_CACHE_DIR", str(path / "cache"))
        cache = CompilationCache()
        monkeypatch.setattr(cache_mod, "_default_cache", cache)
        return cache

    return _make


@pytest.fixture
def report(capsys):
    """Print a regenerated artefact past pytest's output capture, so the
    tables and figures appear in the benchmark log for passing runs."""

    def _report(title: str, text: str) -> None:
        bar = "=" * 78
        with capsys.disabled():
            print(f"\n{bar}\n{title}\n{bar}\n{text}\n{bar}")

    return _report


def print_artifact(title: str, text: str) -> None:
    """Plain (captured) artefact printer, for non-fixture contexts."""
    bar = "=" * 78
    print(f"\n{bar}\n{title}\n{bar}\n{text}\n{bar}")


def pytest_sessionfinish(session, exitstatus):
    """Emit one machine-readable ``BENCH_<module>.json`` per bench module.

    Routes every pytest-benchmark suite through the shared
    :mod:`benchmarks.bench_utils` schema so CI's perf job and the nightly
    sweep consume the same format the standalone scripts write. No-ops
    when pytest-benchmark did not run (e.g. ``--benchmark-disable``
    collection-only sessions with no recorded stats).
    """
    from pathlib import Path

    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    from benchmarks.bench_utils import (
        pytest_benchmarks_to_metrics,
        write_bench_json,
    )

    by_module: dict[str, list] = {}
    for bench in bench_session.benchmarks:
        if not getattr(bench, "stats", None):
            continue
        module = Path(bench.fullname.split("::")[0]).stem
        by_module.setdefault(module, []).append(bench)
    for module, benches in by_module.items():
        try:
            write_bench_json(module, pytest_benchmarks_to_metrics(benches),
                             scale=SCALE)
        except OSError:
            pass  # read-only CWD must not fail the benchmark run
