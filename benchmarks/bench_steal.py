"""Work-stealing planner quality and elastic-queue overhead.

Two properties of the adaptive dispatcher worth tracking:

* **Chunk balance** — cost-planned chunks should shrink the sweep's
  critical path: we simulate list-scheduling both partitions (workers
  pull chunks in order, exactly what the dispatcher does) over the same
  cost table and record the estimated makespan of each, alongside the
  ideal ``total / workers`` lower bound.
* **Queue overhead** — the filesystem queue (enqueue + claim-by-rename
  + heartbeat + collect) must stay negligible next to the chunks'
  compile/simulate work: an elastic dispatch over in-process workers is
  compared with the plain inline dispatch of the same sweep.
"""

from __future__ import annotations

import threading
import time

from benchmarks.conftest import TINY

from repro.pipeline.batch import artifact_jobs
from repro.pipeline.dispatch import InlineTransport, QueueTransport, dispatch
from repro.pipeline.fsqueue import worker_loop
from repro.pipeline.shard import ShardSpec
from repro.pipeline.steal import load_costs, plan_chunks


def _chunk_costs(position_chunks, keys, costs):
    return [sum(costs.get(keys[p], 0.0) for p in chunk)
            for chunk in position_chunks]


def _makespan(chunk_costs, workers: int) -> float:
    """List-schedule chunks (in order) onto idle workers — exactly the
    dispatcher's pull discipline — and return the finish time."""
    finish = [0.0] * workers
    for cost in chunk_costs:
        slot = finish.index(min(finish))
        finish[slot] += cost
    return max(finish) if finish else 0.0


def test_planner_balance_vs_uniform(benchmark, report, tmp_path,
                                    fresh_default_cache):
    """Cost-planned chunks vs uniform slices over a warm cost table."""
    fresh_default_cache(tmp_path)
    warm = dispatch("table6", TINY, InlineTransport(2))
    assert warm.ok and warm.costs_recorded > 0

    keys = [job.key for job in artifact_jobs("table6", TINY)]
    costs = load_costs("table6", TINY, keys)
    planned = plan_chunks(keys, costs, slots=2)
    assert planned is not None
    uniform = [tuple(p for p in range(len(keys))
                     if p % warm.chunks == i - 1)
               for i in range(1, warm.chunks + 1)]

    planned_span = _makespan(_chunk_costs(planned, keys, costs), 2)
    uniform_span = _makespan(_chunk_costs(uniform, keys, costs), 2)
    ideal = sum(costs.values()) / 2 or 1.0

    benchmark.pedantic(plan_chunks, args=(keys, costs, 2),
                       rounds=5, iterations=20)

    report(
        f"work-stealing chunk balance (table6, scale {TINY}, 2 workers)",
        f"ideal makespan (total/2)  {ideal * 1e3:9.2f} ms\n"
        f"uniform  {len(uniform):3d} chunk(s)     "
        f"{uniform_span * 1e3:9.2f} ms ({uniform_span / ideal:5.2f}x ideal)\n"
        f"planned  {len(planned):3d} chunk(s)     "
        f"{planned_span * 1e3:9.2f} ms ({planned_span / ideal:5.2f}x ideal)",
    )
    # Guided chunks bound the critical path: no planned chunk exceeds
    # half an ideal worker-share plus one job, so the estimated makespan
    # stays close to ideal.
    assert planned_span <= 2 * ideal + 1e-9


def test_queue_transport_overhead(benchmark, report, tmp_path,
                                  fresh_default_cache):
    """Elastic queue dispatch vs plain inline dispatch, warm cache."""
    fresh_default_cache(tmp_path)
    assert dispatch("table3", TINY, InlineTransport(2)).ok  # warm the cache

    t0 = time.perf_counter()
    inline = dispatch("table3", TINY, InlineTransport(2))
    inline_s = time.perf_counter() - t0
    assert inline.ok

    def queue_dispatch():
        root = tmp_path / f"q{time.monotonic_ns()}"
        workers = [threading.Thread(target=worker_loop,
                                    kwargs=dict(root=root, poll=0.01),
                                    daemon=True)
                   for _ in range(2)]
        for worker in workers:
            worker.start()
        result = dispatch("table3", TINY, QueueTransport(root),
                          lease_timeout=60)
        for worker in workers:
            worker.join(10)
        assert result.ok
        return result

    t0 = time.perf_counter()
    queued = queue_dispatch()
    queue_s = time.perf_counter() - t0

    benchmark.pedantic(queue_dispatch, rounds=3, iterations=1)

    report(
        f"elastic queue overhead (table3, scale {TINY}, warm cache)",
        f"inline:2 dispatch       {inline_s * 1e3:9.1f} ms\n"
        f"queue + 2 workers       {queue_s * 1e3:9.1f} ms "
        f"({queue_s / inline_s:5.2f}x inline)",
    )
    assert queued.merged.text == inline.merged.text


def test_explicit_shard_selection_overhead(benchmark):
    """Explicit-position selection must stay as cheap as modulo."""
    jobs = list(range(10_000))
    spec = ShardSpec(1, 4, tuple(range(0, 10_000, 4)))

    def select():
        return spec.select(jobs)

    result = benchmark(select)
    assert len(result) == 2500
