"""Sharded sweep overhead and staged-cache effectiveness.

Two properties of the shard/merge pipeline worth tracking over time:

* **Shard overhead** — running an artefact as N manifests plus a merge
  should cost roughly what the serial run costs (the manifest encode /
  decode / validate layer must stay negligible next to compilation and
  simulation), while distributing cleanly over hosts.
* **Staged reuse** — a ``--no-cache`` recompute with a warm dataset
  stage should beat a fully cold one: dataset generation dominates cold
  build time and is exempt from ``--no-cache``, so only the compile-side
  stages are redone.
"""

from __future__ import annotations

import time

from benchmarks.conftest import TINY

from repro.api import CompileRequest
from repro.api import evaluate as api_evaluate
from repro.eval.harness import table6
from repro.pipeline.shard import ShardSpec, merge_manifests, run_shard


def evaluate(kernel, dataset, scale, use_cache=None):
    request = CompileRequest(kernel=kernel, dataset=dataset, scale=scale)
    return api_evaluate(request, use_cache=use_cache).platform_times()


def test_shard_merge_vs_serial(benchmark, report, tmp_path,
                               fresh_default_cache):
    """3-way shard + merge against the serial table6 run."""
    fresh_default_cache(tmp_path)

    t0 = time.perf_counter()
    serial = table6(TINY, use_cache=False)
    serial_s = time.perf_counter() - t0

    # Fresh cache per shard: each "host" starts cold and shares nothing,
    # the worst case for the sharded path.
    t0 = time.perf_counter()
    manifests = []
    for i in (1, 2, 3):
        fresh_default_cache(tmp_path / f"host{i}")
        manifests.append(run_shard("table6", TINY, ShardSpec(i, 3),
                                   use_cache=False))
    merged = merge_manifests(manifests)
    sharded_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    remerged = merge_manifests(manifests)
    merge_s = time.perf_counter() - t0

    benchmark.pedantic(merge_manifests, args=(manifests,),
                       rounds=3, iterations=1)

    report(
        f"shard/merge overhead (table6, scale {TINY})",
        f"serial            {serial_s * 1e3:9.1f} ms\n"
        f"3 shards + merge  {sharded_s * 1e3:9.1f} ms "
        f"({sharded_s / serial_s:5.2f}x serial, sequential hosts)\n"
        f"merge only        {merge_s * 1e3:9.1f} ms "
        f"({100 * merge_s / serial_s:5.2f}% of serial)",
    )
    assert merged.data == serial
    assert remerged.data == serial


def test_no_cache_with_warm_datasets(benchmark, report, tmp_path,
                                     fresh_default_cache):
    """--no-cache recompute: cold vs dataset-stage-warm."""
    cell = ("SpMV", "bcsstk30")

    fresh_default_cache(tmp_path / "cold")
    t0 = time.perf_counter()
    cold_result = evaluate(*cell, TINY, use_cache=False)
    cold = time.perf_counter() - t0

    # Warm the dataset stage only (a prior cached run), then recompute.
    cache = fresh_default_cache(tmp_path / "warm")
    evaluate(*cell, TINY)
    t0 = time.perf_counter()
    warm_result = evaluate(*cell, TINY, use_cache=False)
    warm = time.perf_counter() - t0
    hits = cache.stats.stage_hits.get("dataset", 0)

    benchmark.pedantic(evaluate, args=(*cell, TINY),
                       kwargs={"use_cache": False}, rounds=3, iterations=1)

    report(
        f"--no-cache with warm dataset stage ({cell[0]} on {cell[1]}, "
        f"scale {TINY})",
        f"fully cold          {cold * 1e3:9.1f} ms\n"
        f"datasets warm       {warm * 1e3:9.1f} ms "
        f"({cold / warm:5.2f}x; dataset-stage hits: {hits})",
    )
    assert warm_result.seconds == cold_result.seconds
    assert hits >= 1
