"""``repro serve`` latency: cold vs warm, with and without coalescing.

Runs an in-process daemon (:class:`repro.service.server.ServiceThread`)
and drives it with concurrent HTTP clients over the Table 6 kernels on
their first datasets:

* **cold** — every kernel once, nothing staged (a fresh per-run seed
  keeps the cache genuinely cold even when ``REPRO_CACHE_DIR`` is warm);
* **warm** — N concurrent clients replay the same requests, now answered
  straight from the staged cache (the p50 here is the daemon's hot-path
  overhead: parse + cache peek + render);
* **coalesce** — N identical concurrent cold requests must trigger
  exactly one underlying compile (the rest join its in-flight future or
  hit the cache the winner populated);
* **no-coalesce** — the same burst with coalescing disabled, for the
  comparison column.

Every warm response is also diffed byte-for-byte against the serial
``repro.api.evaluate`` rendering — the daemon must be a transparent
cache front, not a different code path.

Emits ``BENCH_serve.json`` through the shared schema::

    python -m benchmarks.bench_serve --scale 0.05 --clients 16 --smoke

``--pool queue:DIR --spawn-workers 2`` exercises the elastic worker pool
instead of the in-process thread pool.
"""

from __future__ import annotations

import http.client
import json
import os
import statistics
import subprocess
import sys
import threading
import time

#: Smoke-mode acceptance bar: warm-cache median latency, milliseconds.
WARM_P50_BAR_MS = 50.0

SMOKE_SCALE = 0.05
DEFAULT_CLIENTS = 16


def _post(port: int, path: str, body: dict,
          timeout: float = 300.0) -> tuple[int, bytes, float]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        t0 = time.perf_counter()
        conn.request("POST", path, body=json.dumps(body))
        resp = conn.getresponse()
        data = resp.read()
        return resp.status, data, time.perf_counter() - t0
    finally:
        conn.close()


def _stats(port: int) -> dict:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", "/stats")
        return json.loads(conn.getresponse().read())
    finally:
        conn.close()


def _metrics_text(port: int) -> str:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", "/metrics")
        resp = conn.getresponse()
        assert resp.status == 200
        assert resp.getheader("Content-Type", "").startswith("text/plain")
        return resp.read().decode("utf-8")
    finally:
        conn.close()


def _parse_prometheus(text: str) -> dict[str, float]:
    """Samples by full series name; raises on unparseable lines."""
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        samples[series] = float(value)  # ValueError → malformed exposition
    return samples


def _latency_summary(seconds: list[float]) -> dict[str, float]:
    ordered = sorted(seconds)
    return {
        "p50_ms": statistics.median(ordered) * 1e3,
        "p99_ms": ordered[max(0, int(0.99 * len(ordered)) - 1)] * 1e3
        if len(ordered) > 1 else ordered[0] * 1e3,
        "max_ms": ordered[-1] * 1e3,
        "n": float(len(ordered)),
    }


def _run_clients(port: int, requests: list[dict],
                 clients: int) -> tuple[list[float], list[bytes]]:
    """Fan ``requests`` out round-robin over ``clients`` threads."""
    latencies: list[float] = []
    bodies: list[bytes] = []
    lock = threading.Lock()
    errors: list[str] = []

    def worker(mine: list[dict]) -> None:
        for body in mine:
            status, data, seconds = _post(port, "/evaluate", body)
            with lock:
                if status != 200:
                    errors.append(f"{status}: {data[:200]!r}")
                else:
                    latencies.append(seconds)
                    bodies.append(data)

    shards = [requests[i::clients] for i in range(clients)]
    threads = [threading.Thread(target=worker, args=(s,))
               for s in shards if s]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise AssertionError(f"serve returned errors: {errors[:3]}")
    return latencies, bodies


def run_bench(scale: float = SMOKE_SCALE, clients: int = DEFAULT_CLIENTS,
              pool: str = "inline:4", spawn_workers: int = 0,
              smoke: bool = False) -> dict:
    import repro.api as api
    from repro.pipeline.dispatch import worker_env
    from repro.service.server import ServeConfig, ServiceThread

    # A per-run seed keeps the cold phase honest even on a warm cache
    # directory; the serial diff below uses the same seed, so warm
    # entries still match.
    seed = 1000 + (os.getpid() % 100_000)
    kernels = list(__import__("repro.kernels",
                              fromlist=["KERNEL_ORDER"]).KERNEL_ORDER)
    requests = [{"kernel": name, "scale": scale, "seed": seed}
                for name in kernels]
    metrics: dict[str, dict] = {}

    workers: list[subprocess.Popen] = []
    config = ServeConfig(port=0, pool=pool, max_inflight=max(64, clients),
                         queue_poll=0.02, queue_lease=120.0)
    with ServiceThread(config) as svc:
        if spawn_workers:
            root = pool.partition(":")[2]
            workers = [subprocess.Popen(
                [sys.executable, "-m", "repro", "worker", root, "--quiet",
                 "--poll", "0.05"], env=worker_env())
                for _ in range(spawn_workers)]

        cold, _ = _run_clients(svc.port, requests, clients)
        metrics["cold"] = _latency_summary(cold)

        warm_rounds = requests * max(1, (4 * clients) // len(requests))
        warm, warm_bodies = _run_clients(svc.port, warm_rounds, clients)
        metrics["warm"] = _latency_summary(warm)

        # Byte-identity: every warm response must equal the serial
        # rendering of its request.
        serial = {
            json.dumps(r, sort_keys=True): api.evaluate(
                api.CompileRequest(**r)).to_json().encode()
            for r in requests
        }
        mismatches = sum(1 for body in warm_bodies
                         if body not in serial.values())
        metrics["warm"]["byte_mismatches"] = float(mismatches)

        # Coalescing: an identical concurrent cold burst computes once.
        before = _stats(svc.port)["serve"]
        burst = [{"kernel": kernels[0], "scale": scale,
                  "seed": seed + 1}] * clients
        t0 = time.perf_counter()
        _run_clients(svc.port, burst, clients)
        wall = time.perf_counter() - t0
        after = _stats(svc.port)["serve"]
        metrics["coalesce"] = {
            "computed": float(after["computed"] - before["computed"]),
            "coalesced": float(after["coalesced"] - before["coalesced"]),
            "cache_hits": float(after["cache_hits"] - before["cache_hits"]),
            "wall_ms": wall * 1e3,
            "clients": float(clients),
        }

        # Prometheus scrape while the daemon is still hot.
        exposition = _metrics_text(svc.port)
        samples = _parse_prometheus(exposition)
        metrics["prometheus"] = {
            "series": float(len(samples)),
            "type_lines": float(sum(1 for line in exposition.splitlines()
                                    if line.startswith("# TYPE"))),
            "requests_total": samples.get("repro_serve_requests_total", 0.0),
            "latency_observations": samples.get("repro_request_seconds_count",
                                                0.0),
            "coalesced_total": samples.get("repro_serve_coalesced_total",
                                           0.0),
        }

    for proc in workers:  # the drain's stop sentinel releases them
        proc.wait(timeout=60)

    # The comparison column: the same burst, coalescing off — every
    # client that misses the cache starts its own job.
    nc_config = ServeConfig(port=0, pool=pool if not spawn_workers
                            else "inline:4",
                            max_inflight=max(64, clients), coalesce=False)
    if not spawn_workers or not pool.startswith("queue:"):
        with ServiceThread(nc_config) as svc:
            before = _stats(svc.port)["serve"]
            burst = [{"kernel": kernels[0], "scale": scale,
                      "seed": seed + 2}] * clients
            t0 = time.perf_counter()
            _run_clients(svc.port, burst, clients)
            wall = time.perf_counter() - t0
            after = _stats(svc.port)["serve"]
            metrics["no_coalesce"] = {
                "computed": float(after["computed"] - before["computed"]),
                "wall_ms": wall * 1e3,
            }

    if smoke:
        assert metrics["warm"]["p50_ms"] < WARM_P50_BAR_MS, (
            f"warm p50 {metrics['warm']['p50_ms']:.1f}ms over the "
            f"{WARM_P50_BAR_MS}ms bar")
        assert metrics["coalesce"]["computed"] == 1.0, (
            f"identical burst computed "
            f"{metrics['coalesce']['computed']:.0f} times, expected 1")
        assert metrics["coalesce"]["coalesced"] > 0, "nothing coalesced"
        assert metrics["warm"]["byte_mismatches"] == 0.0
        prom = metrics["prometheus"]
        assert prom["type_lines"] > 0, "no # TYPE lines in /metrics"
        assert prom["requests_total"] > 0, "requests counter never moved"
        assert prom["latency_observations"] > 0, "latency histogram empty"
        assert prom["coalesced_total"] > 0, "coalesce counter never moved"
    return metrics


def run_smoke(scale: float = SMOKE_SCALE, clients: int = DEFAULT_CLIENTS,
              pool: str = "inline:4", spawn_workers: int = 0,
              smoke: bool = False) -> dict:
    """Collect the metrics and write ``BENCH_serve.json``."""
    from benchmarks.bench_utils import write_bench_json

    metrics = run_bench(scale, clients, pool, spawn_workers, smoke)
    path = write_bench_json("serve", metrics, scale=scale,
                            extra={"pool": pool, "clients": clients})
    print(f"wrote {path}")
    return metrics


def test_serve_latency_smoke():
    """Acceptance: warm p50 under the bar; identical burst compiles once."""
    metrics = run_smoke(scale=0.02, clients=8, smoke=True)
    print(json.dumps(metrics, indent=2, sort_keys=True))


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="repro serve latency benchmark")
    parser.add_argument("--scale", type=float, default=SMOKE_SCALE)
    parser.add_argument("--clients", type=int, default=DEFAULT_CLIENTS)
    parser.add_argument("--pool", default="inline:4",
                        help="inline:N or queue:DIR (see --spawn-workers)")
    parser.add_argument("--spawn-workers", type=int, default=0, metavar="N",
                        help="launch N `repro worker` subprocesses against "
                             "a queue:DIR pool")
    parser.add_argument("--smoke", action="store_true",
                        help="enforce the warm-p50 and coalescing bars")
    args = parser.parse_args(argv)
    metrics = run_smoke(args.scale, args.clients, args.pool,
                        args.spawn_workers, args.smoke)
    for phase in ("cold", "warm"):
        entry = metrics[phase]
        print(f"{phase:12s} p50={entry['p50_ms']:8.2f}ms "
              f"p99={entry['p99_ms']:8.2f}ms  n={entry['n']:.0f}")
    co = metrics["coalesce"]
    print(f"coalesce     computed={co['computed']:.0f} "
          f"coalesced={co['coalesced']:.0f} "
          f"cache_hits={co['cache_hits']:.0f} wall={co['wall_ms']:.0f}ms")
    if "no_coalesce" in metrics:
        nc = metrics["no_coalesce"]
        print(f"no-coalesce  computed={nc['computed']:.0f} "
              f"wall={nc['wall_ms']:.0f}ms")
    return 0


if __name__ == "__main__":
    sys.exit(main())
