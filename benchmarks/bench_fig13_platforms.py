"""Figure 13 — generated kernel performance across three platforms.

The Capstan / GPU / CPU subset of Table 6, normalised to Capstan — the
paper's summary chart of the compiled-code comparison (Stardust compiles
to Capstan; TACO compiles the CPU and GPU baselines).
"""

from statistics import geometric_mean


from benchmarks.conftest import JOBS, SCALE
from repro.util import ascii_bars
from repro.eval.harness import figure13
from repro.eval.paper_results import TABLE6_NORMALISED
from repro.kernels import KERNEL_ORDER


def _format(series: dict[str, dict[str, float]]) -> str:
    lines = [f"{'Kernel':14s}{'Capstan':>10s}{'GPU':>12s}{'CPU':>12s}"
             f"{'p.GPU':>12s}{'p.CPU':>12s}"]
    p_gpu = TABLE6_NORMALISED["V100 GPU"]
    p_cpu = TABLE6_NORMALISED["128-Thread CPU"]
    for k in KERNEL_ORDER:
        lines.append(
            f"{k:14s}{series['Capstan'][k]:10.2f}{series['GPU'][k]:12.2f}"
            f"{series['CPU'][k]:12.2f}{p_gpu[k]:12.2f}{p_cpu[k]:12.2f}"
        )
    g = geometric_mean
    lines.append(
        f"{'gmean':14s}{1.0:10.2f}{g(list(series['GPU'].values())):12.2f}"
        f"{g(list(series['CPU'].values())):12.2f}"
        f"{g(list(p_gpu.values())):12.2f}{g(list(p_cpu.values())):12.2f}"
    )
    return "\n".join(lines)


def test_report_figure13(benchmark, report):
    """Regenerate and print the Figure 13 series; check the headline."""
    series = benchmark.pedantic(
        figure13, args=(SCALE,), kwargs={"jobs": JOBS, "use_cache": False},
        rounds=1, iterations=1)
    bars = ascii_bars(
        {f"{k} GPU": v for k, v in series["GPU"].items()}
        | {f"{k} CPU": v for k, v in series["CPU"].items()},
        title="normalised runtime vs Capstan=1 (log bars; compare Fig. 13)",
    )
    report(f"Figure 13 (E5), scale={SCALE}", _format(series) + "\n\n" + bars)

    gpu_gmean = geometric_mean(list(series["GPU"].values()))
    cpu_gmean = geometric_mean(list(series["CPU"].values()))
    # Abstract headline: 138x vs CPU, 41x vs GPU. The model reproduces the
    # order of magnitude; exact values depend on scale and calibration.
    assert cpu_gmean > 10
    assert gpu_gmean > 5
    # CPU is the slowest platform in geomean, as in the paper.
    assert cpu_gmean > gpu_gmean or gpu_gmean / cpu_gmean < 5
