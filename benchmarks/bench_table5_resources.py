"""Table 5 — Capstan resources required by the compiled kernels.

Regenerates the resource-occupancy table (PCU/PMU/MC/shuffle counts and
percentages, with the limiting resource highlighted). Benchmarks measure
the resource-allocation pass itself.
"""

import pytest

from benchmarks.conftest import JOBS, TINY
from repro.capstan import estimate_resources
from repro.core import compile_stmt
from repro.data import datasets_for, load
from repro.eval.harness import format_table5, table5
from repro.eval.paper_results import TABLE5_RESOURCES
from repro.kernels import KERNEL_ORDER, KERNELS


@pytest.mark.parametrize("name", KERNEL_ORDER)
def test_estimate_resources(benchmark, name):
    """Benchmark: resource allocation for one compiled kernel."""
    spec = KERNELS[name]
    tensors = load(name, datasets_for(name)[0].name, scale=TINY)
    stmt, _ = spec.build(tensors)
    kernel = compile_stmt(stmt, name)
    est = benchmark(estimate_resources, kernel)
    # The shuffle-network column reproduces Table 5 exactly.
    assert est.shuffle == TABLE5_RESOURCES[name][4]


def test_report_table5(benchmark, report):
    """Regenerate and print Table 5 (measured vs paper)."""
    results = benchmark.pedantic(
        table5, args=(TINY,), kwargs={"jobs": JOBS, "use_cache": False},
        rounds=1, iterations=1)
    report("Table 5 (E2)", format_table5(results))
    # Qualitative shape checks against the paper's table.
    assert results["Plus2"].pcu == min(r.pcu for r in results.values())
    for name in ("SpMV", "MatTransMul", "Residual", "TTV"):
        assert "Shuf" in results[name].limiting, name
