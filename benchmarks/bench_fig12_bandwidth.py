"""Figure 12 — impact of DRAM bandwidth on performance.

Sweeps the memory system from 20 GB/s to 2000 GB/s for every kernel and
reports the speedup relative to the 20 GB/s point. The paper's observation
reproduces: outer-parallelized kernels exploit bandwidth (steep curves),
while Plus2 — not outer-parallelized — barely moves.
"""

import pytest

from benchmarks.conftest import JOBS, SCALE
from repro.util import ascii_xy
from repro.api import CompileRequest, build
from repro.capstan import CapstanSimulator, compute_stats
from repro.data import datasets_for
from repro.eval.harness import figure12, format_figure12
from repro.eval.paper_results import FIG12_BANDWIDTHS
from repro.kernels import KERNEL_ORDER


@pytest.mark.parametrize("name", KERNEL_ORDER)
def test_bandwidth_sweep(benchmark, name):
    """Benchmark: the seven-point bandwidth sweep for one kernel."""
    kernel = build(CompileRequest(kernel=name,
                                  dataset=datasets_for(name)[0].name,
                                  scale=SCALE))
    stats = compute_stats(kernel)
    sim = CapstanSimulator()
    sweep = benchmark.pedantic(
        sim.sweep_bandwidth, args=(kernel, None, FIG12_BANDWIDTHS, stats),
        rounds=1, iterations=1,
    )
    times = [sweep[bw].seconds for bw in FIG12_BANDWIDTHS]
    assert times == sorted(times, reverse=True)  # monotone in bandwidth


def test_report_figure12(benchmark, report):
    """Regenerate and print the Figure 12 series (via the pipeline)."""
    series = benchmark.pedantic(
        figure12, args=(SCALE,), kwargs={"jobs": JOBS, "use_cache": False},
        rounds=1, iterations=1)
    chart = ascii_xy(
        {k: series[k] for k in ("SpMV", "SDDMM", "TTV", "InnerProd", "Plus2")},
        title="speedup vs DRAM bandwidth (log-log; compare paper Fig. 12)",
    )
    report(
        f"Figure 12 (E4), scale={SCALE}",
        format_figure12(series) + "\n\n" + chart,
    )
    top_bw = FIG12_BANDWIDTHS[-1]
    # Bandwidth-hungry kernels gain an order of magnitude across the sweep;
    # Plus2 (par = 1, compute-bound) barely gains — the paper's contrast.
    assert series["SpMV"][top_bw] > 5.0
    assert series["Plus2"][top_bw] < series["SpMV"][top_bw]
    assert series["Plus2"][top_bw] < 4.0
