"""Table 3 — lines of code: Stardust input vs generated Spatial.

Regenerates the Table 3 LoC comparison (and the Section 8.3 SpMV
productivity study: 10 input lines vs ~52 handwritten Spatial lines).
Each per-kernel benchmark measures full compilation (schedule analysis,
memory planning, lowering, code generation) on a small dataset.
"""

import pytest

from benchmarks.conftest import JOBS, TINY
from repro.core import compile_stmt
from repro.data import datasets_for, load
from repro.eval.harness import format_table3, table3
from repro.kernels import KERNEL_ORDER, KERNELS
from repro.spatial.codegen import generate


@pytest.mark.parametrize("name", KERNEL_ORDER)
def test_compile_and_codegen(benchmark, name):
    """Benchmark: full compilation pipeline for one kernel."""
    spec = KERNELS[name]
    dataset = datasets_for(name)[0]
    tensors = load(name, dataset.name, scale=TINY)

    def build():
        stmt, _ = spec.build(tensors)
        # cache=False: every round must do real compilation work, or the
        # recorded timing collapses to a fingerprint lookup after round 1.
        kernel = compile_stmt(stmt, name.lower(), cache=False)
        return generate(kernel.program)

    source = benchmark(build)
    assert "Accel {" in source


def test_report_table3(benchmark, report):
    """Regenerate and print Table 3 (measured vs paper)."""
    rows = benchmark.pedantic(
        table3, args=(TINY,), kwargs={"jobs": JOBS, "use_cache": False},
        rounds=1, iterations=1)
    report("Table 3 (E1/E6)", format_table3(rows))
    # Qualitative shape: input programs are an order of magnitude smaller
    # than the Spatial they generate, for every kernel.
    for name, r in rows.items():
        assert r["input_loc"] < r["spatial_loc"], name
        assert r["input_loc"] <= 2 * r["paper_input_loc"], name
