"""Quickstart: compile sparse matrix-vector multiplication to Capstan.

Covers the full Stardust flow in ~40 lines:

1. declare tensors with formats (data-representation language),
2. state the algorithm in index notation,
3. schedule it for the accelerator (environment / precompute / accelerate),
4. compile to Spatial, inspect the generated code,
5. execute functionally and check against scipy, and
6. predict performance on the Capstan model under two memory systems.

Run:  python examples/quickstart.py
"""

import numpy as np
import scipy.sparse as sp

from repro.capstan import DDR4, HBM2E, CapstanSimulator
from repro.core import compile_stmt
from repro.formats import CSR, DENSE_VECTOR, offChip, onChip
from repro.ir import index_vars
from repro.tensor import Tensor, scalar, to_dense

# -- 1. Tensors and formats (Figure 5 style) --------------------------------
N = 64
rng = np.random.default_rng(0)
A_mat = sp.random(N, N, density=0.1, random_state=0, format="csr")

A = Tensor("A", (N, N), CSR(offChip)).from_dense(A_mat.toarray())
x = Tensor("x", (N,), DENSE_VECTOR(offChip)).from_dense(rng.random(N))
y = Tensor("y", (N,), DENSE_VECTOR(offChip))

# -- 2. Algorithm: y(i) = A(i,j) * x(j) --------------------------------------
i, j = index_vars("i j")
y[i] = A[i, j] * x[j]

# -- 3. Schedule: parallelize and accelerate the reduction -------------------
ws = scalar("ws", onChip)
stmt = (
    y.get_index_stmt()
    .environment("innerPar", 16)
    .environment("outerPar", 16)
    .precompute(A[i, j] * x[j], [], [], ws)
    .accelerate(j, "Spatial", "Reduction", par="innerPar")
)

# -- 4. Compile to Spatial ----------------------------------------------------
kernel = compile_stmt(stmt, "spmv")
print("=== Generated Spatial", "=" * 40)
print(kernel.source)
print(f"Generated Spatial LoC: {kernel.spatial_loc}")

# -- 5. Execute functionally and verify ---------------------------------------
result = to_dense(kernel.run())
expected = A_mat @ x.to_dense()
assert np.allclose(result, expected), "mismatch against scipy!"
print("Functional check vs scipy: OK")

# -- 6. Predict performance on the Capstan model ------------------------------
sim = CapstanSimulator()
for dram in (HBM2E, DDR4):
    res = sim.simulate(kernel, dram=dram)
    print(
        f"Capstan ({dram.name:6s}): {res.seconds * 1e6:8.2f} us  "
        f"bottleneck={res.bottleneck}"
    )
print(
    "Resources:",
    sim.simulate(kernel, dram=HBM2E).resources.row(),
)
