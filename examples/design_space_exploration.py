"""Design-space exploration through the environment command (Section 5.2).

The paper argues that the ``environment`` scheduling command lets an end
programmer "perform design-space exploration of the backend hardware
schedules and tensor-algebra kernels ... without direct knowledge of the
backend architecture". This example sweeps the two parallelization factors
for SpMV and SDDMM on a mid-size workload, reporting predicted cycles and
resource usage per configuration — exactly the auto-scheduling loop the
paper envisions.

Run:  python examples/design_space_exploration.py
"""

import numpy as np

from repro.capstan import HBM2E, CapstanSimulator
from repro.core import compile_stmt
from repro.kernels import KERNELS


def make_tensors(kernel_name: str, n: int, density: float, rng):
    spec = KERNELS[kernel_name]
    shapes = {
        "SpMV": {"A": (n, n), "x": (n,), "y": (n,)},
        "SDDMM": {"A": (n, n), "B": (n, n), "C": (n, 16), "D": (16, n)},
    }[kernel_name]
    tensors = {}
    for ts in spec.tensor_specs:
        t = ts.make(shapes[ts.name])
        if ts.role == "sparse":
            dense = (rng.random(t.shape) < density) * rng.random(t.shape)
            t.from_dense(dense)
        elif ts.role == "dense":
            t.from_dense(rng.random(t.shape))
        tensors[ts.name] = t
    return tensors


def explore(kernel_name: str, n: int = 512, density: float = 0.05) -> None:
    rng = np.random.default_rng(7)
    sim = CapstanSimulator()
    spec = KERNELS[kernel_name]
    print(f"--- {kernel_name}: {n}x{n} at {density:.0%} density ---")
    print(f"{'inner':>6s}{'outer':>6s}{'us':>10s}{'bottleneck':>12s}"
          f"{'PCU':>6s}{'PMU':>6s}{'MC':>5s}{'Shuf':>6s}")
    best = None
    for inner_par in (4, 8, 16):
        for outer_par in (1, 4, 8, 16, 32):
            tensors = make_tensors(kernel_name, n, density, rng)
            stmt, _ = spec.build(tensors, inner_par=inner_par,
                                 outer_par=outer_par)
            kernel = compile_stmt(stmt, kernel_name.lower())
            res = sim.simulate(kernel, dram=HBM2E)
            r = res.resources
            print(f"{inner_par:6d}{outer_par:6d}{res.seconds * 1e6:10.2f}"
                  f"{res.bottleneck:>12s}{r.pcu:6d}{r.pmu:6d}{r.mc:5d}"
                  f"{r.shuffle:6d}")
            if best is None or res.seconds < best[0]:
                best = (res.seconds, inner_par, outer_par)
    _, bi, bo = best
    print(f"best configuration: innerPar={bi}, outerPar={bo}\n")


if __name__ == "__main__":
    explore("SpMV")
    explore("SDDMM")
