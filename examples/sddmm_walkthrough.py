"""The paper's running example: SDDMM, end to end (Sections 4-7).

Reconstructs every intermediate artefact the paper shows for sampled
dense-dense matrix multiplication:

* the input program of Figure 5 (formats, algorithm, schedule),
* the scheduled concrete index notation,
* the Section 6 memory analysis (fine-grained array bindings),
* the Figure 10 co-iteration rewrite trace,
* the generated Spatial of Figure 11, and
* the contrasting TACO-style imperative CPU code of Figure 4a.

Run:  python examples/sddmm_walkthrough.py
"""

import numpy as np

from repro.backends import lower_cpu
from repro.core import compile_stmt
from repro.formats import CSR, DENSE_MATRIX, DENSE_MATRIX_CM, offChip, onChip
from repro.ir import format_stmt_tree, index_vars
from repro.tensor import Tensor, evaluate_dense, scalar, to_dense

# -- Figure 5: formats, tensors, algorithm -----------------------------------
N, K = 32, 8
rng = np.random.default_rng(1)
B_dense = (rng.random((N, N)) < 0.15) * rng.random((N, N))

A = Tensor("A", (N, N), CSR(offChip))
B = Tensor("B", (N, N), CSR(offChip)).from_dense(B_dense)
C = Tensor("C", (N, K), DENSE_MATRIX(offChip)).from_dense(rng.random((N, K)))
D = Tensor("D", (K, N), DENSE_MATRIX_CM(offChip)).from_dense(rng.random((K, N)))

i, j, k = index_vars("i j k")
A[i, j] = B[i, j] * C[i, k] * D[k, j]

# -- Figure 5 lines 16-24: the schedule ---------------------------------------
ws = scalar("ws", onChip)
stmt = (
    A.get_index_stmt()
    .environment("innerPar", 16)
    .environment("outerPar", 2)
    .precompute(B[i, j] * C[i, k] * D[k, j], [], [], ws)
    .accelerate(k, "Spatial", "Reduction", par="innerPar")
)

print("=== Scheduled concrete index notation ===")
print(format_stmt_tree(stmt.cin))
print()

# -- Compile ------------------------------------------------------------------
kernel = compile_stmt(stmt, "sddmm")

print("=== Memory analysis (Section 6.1 bindings) ===")
print(kernel.memory_report())
print()

print("=== Co-iteration rewrite trace (Figure 10 rules) ===")
for info in kernel.analysis.foralls:
    print(f"  {info.strategy.describe()}")
    for line in info.strategy.trace:
        print(f"    {line}")
print()

print("=== Generated Spatial (compare Figure 11) ===")
print(kernel.source)

print("=== TACO-style imperative CPU code (compare Figure 4a) ===")
print(lower_cpu(stmt, "sddmm"))

# -- Verify -------------------------------------------------------------------
result = to_dense(kernel.run())
reference = evaluate_dense(A.get_assignment())
assert np.allclose(result, reference)
print("Functional check vs dense reference: OK")
print(f"Output keeps B's sparsity: {kernel.run().nnz} == {B.nnz} stored values")
