"""TACO merge lattices vs Stardust bit-vector scanners (Section 9).

The paper contrasts the two co-iteration strategies: "TACO uses an
iteration lattice IR to decompose all unions of coordinates into disjoint
intersections and then emits code that performs a multi-way merge
strategy, whereas Stardust emits scanners through logical operations on
bit vectors."

This example takes one union expression and shows both paths side by side:

* the merge lattice and the while-loop merge code the CPU backend emits,
* the bit-vector/scan pipeline the Capstan backend emits,
* and that a *three-way* union is only expressible on Capstan after the
  iterated-two-input rescheduling (the Plus3 strategy), while TACO's
  lattice handles it natively.

Run:  python examples/coiteration_comparison.py
"""

import numpy as np

from repro.backends import execute_cpu, lower_cpu
from repro.core import compile_stmt
from repro.core.coiteration import LoweringError
from repro.formats import CSR, SPARSE_VECTOR, offChip, onChip
from repro.ir import build_lattice, index_vars
from repro.tensor import Tensor, evaluate_dense, to_dense

N = 24
rng = np.random.default_rng(11)


def sparse(name):
    m = (rng.random((N, N)) < 0.2) * rng.random((N, N))
    return Tensor(name, (N, N), CSR(offChip)).from_dense(m)


B, C, D = sparse("B"), sparse("C"), sparse("D")
i, j, jw = index_vars("i j jw")

# ---------------------------------------------------------------------------
print("=== Two-way union: A = B + C ===\n")
A2 = Tensor("A", (N, N), CSR(offChip))
A2[i, j] = B[i, j] + C[i, j]

lattice = build_lattice(A2.get_assignment().rhs, j)
print("TACO merge lattice:", lattice.describe())
print("full union:", lattice.is_full_union, "\n")

print("--- TACO CPU lowering (multi-way merge while-loops) ---")
print(lower_cpu(A2.get_index_stmt(), "plus2d"))

kernel = compile_stmt(A2.get_index_stmt(), "plus2d")
print("--- Stardust Capstan lowering (bit vectors + OR scan) ---")
scan_lines = [
    line for line in kernel.source.splitlines()
    if any(tok in line for tok in ("genBitvector", "Scan(", "BitVector("))
]
print("\n".join(scan_lines))
assert np.allclose(to_dense(kernel.run()),
                   evaluate_dense(A2.get_assignment()))
assert np.allclose(execute_cpu(A2.get_index_stmt()),
                   evaluate_dense(A2.get_assignment()))
print("\nboth backends agree with the dense reference: OK")

# ---------------------------------------------------------------------------
print("\n=== Three-way union: A = B + C + D ===\n")
A3 = Tensor("A3", (N, N), CSR(offChip))
A3[i, j] = B[i, j] + C[i, j] + D[i, j]

lattice3 = build_lattice(A3.get_assignment().rhs, j)
print(f"TACO lattice has {len(lattice3.points)} points (2^3 - 1):")
print(" ", lattice3.describe())
cpu_result = execute_cpu(A3.get_index_stmt())
assert np.allclose(cpu_result, evaluate_dense(A3.get_assignment()))
print("TACO-style CPU executes the 3-way merge natively: OK\n")

try:
    compile_stmt(A3.get_index_stmt(), "plus3_native")
except LoweringError as e:
    print("Capstan rejects the native mapping (two-input scanners):")
    print(" ", e, "\n")

T = Tensor("T", (N,), SPARSE_VECTOR(onChip))
stmt = (
    A3.get_index_stmt()
    .environment("innerPar", 16).environment("outerPar", 8)
    .precompute(B[i, j] + C[i, j], [j], [jw], T)
)
kernel3 = compile_stmt(stmt, "plus3")
assert np.allclose(to_dense(kernel3.run()),
                   evaluate_dense(A3.get_assignment()))
print("After the iterated-two-input reschedule (paper Section 8.1), the")
print("Capstan mapping compiles and matches: OK")
