"""Compiling a long-tail kernel with no handwritten implementation.

The paper's motivation (Sections 1 and 8.4): the value of a compiler is
the long tail of sparse expressions nobody hand-writes for an accelerator.
This example invents such a kernel — a sparsified row/column-bias update

    Z(i,j) = M(i,j) * (r(i) + c(j)) + M(i,j)

(e.g. an attention-mask style operation), schedules it, compiles it to
Capstan, and verifies it — no Spatial, SARA, or Capstan expertise needed.

Run:  python examples/custom_kernel.py
"""

import numpy as np

from repro.capstan import HBM2E, CapstanSimulator
from repro.core import compile_stmt
from repro.formats import CSR, DENSE_VECTOR, offChip
from repro.ir import index_vars
from repro.tensor import Tensor, evaluate_dense, to_dense

N, M_COLS = 48, 40
rng = np.random.default_rng(5)
M_dense = (rng.random((N, M_COLS)) < 0.12) * rng.random((N, M_COLS))

M = Tensor("M", (N, M_COLS), CSR(offChip)).from_dense(M_dense)
r = Tensor("r", (N,), DENSE_VECTOR(offChip)).from_dense(rng.random(N))
c = Tensor("c", (M_COLS,), DENSE_VECTOR(offChip)).from_dense(rng.random(M_COLS))
Z = Tensor("Z", (N, M_COLS), CSR(offChip))

i, j = index_vars("i j")
Z[i, j] = M[i, j] * (r[i] + c[j]) + M[i, j]

stmt = (
    Z.get_index_stmt()
    .environment("innerPar", 16)
    .environment("outerPar", 8)
)

kernel = compile_stmt(stmt, "bias_mask")
print("=== Generated Spatial for the custom kernel ===")
print(kernel.source)

result = to_dense(kernel.run())
reference = evaluate_dense(Z.get_assignment())
assert np.allclose(result, reference)
print("Functional check: OK")
print(f"Output nnz mirrors the mask: {kernel.run().nnz} == {M.nnz}")

res = CapstanSimulator().simulate(kernel, dram=HBM2E)
print(f"Predicted Capstan (HBM2E) time: {res.seconds * 1e6:.2f} us "
      f"(bottleneck: {res.bottleneck})")
print(res.resources.row())
